// Binary serialization for tensors and parameter sets (checkpoints).
//
// Two container versions share the load path:
//   * STK1 (legacy): magic/version header, record count, then (name, shape,
//     float32 payload) records in little-endian byte order.  No integrity
//     data — torn writes are only caught when a length field happens to be
//     implausible.
//   * STK2 (current): adds an optional metadata section (training-resume
//     state: epoch, optimizer step, stream counters, config fingerprint), a
//     CRC-32 per record, and a whole-file CRC-32 trailer.  Any truncation or
//     bit flip is rejected with a typed InvalidArgument.
//
// All writers are crash-safe: the container is built in memory and published
// via write-to-temp + fsync + atomic rename (atomic_write_file), so a kill
// at any instant leaves either the previous file or the new one at the final
// path — never a partial mix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace spiketune {

/// One named tensor in a checkpoint.
struct NamedTensor {
  std::string name;
  Tensor value;
};

/// Optional resume metadata carried by STK2 checkpoints.  `present` is false
/// for plain weight snapshots and for anything loaded from an STK1 file.
struct CheckpointMeta {
  bool present = false;
  std::int64_t epoch = 0;             // next epoch to run on resume
  std::int64_t opt_step = 0;          // optimizer step count (Adam t)
  std::uint64_t encode_stream = 0;    // Trainer's encoder stream counter
  std::uint64_t eval_calls = 0;       // Trainer's evaluate() counter
  std::uint64_t loader_seed = 0;      // DataLoader shuffle seed
  std::uint64_t config_fingerprint = 0;  // hash of the training setup
  double lr_scale = 1.0;              // cumulative rollback LR cut
  std::map<std::string, std::string> extra;  // forward-compatible key/values
};

/// A fully parsed checkpoint: container version, records, and metadata.
struct Checkpoint {
  std::uint32_t version = 0;
  std::vector<NamedTensor> records;
  CheckpointMeta meta;
};

/// Writes records to `path` as STK2 (no metadata) via an atomic
/// temp+fsync+rename.  Throws spiketune::Error on I/O failure.
void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records);

/// As above, with a metadata section (meta.present is forced true on disk).
void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records,
                     const CheckpointMeta& meta);

/// Legacy STK1 writer, kept for compatibility tests and old toolchains.
/// Routed through the same atomic temp+rename helper as the v2 writer.
void save_checkpoint_v1(const std::string& path,
                        const std::vector<NamedTensor>& records);

/// Reads a checkpoint written by any save_checkpoint* (STK1 or STK2).
/// Throws InvalidArgument on malformed files: bad magic, truncation, absurd
/// sizes, or (v2) any CRC mismatch.
std::vector<NamedTensor> load_checkpoint(const std::string& path);

/// As load_checkpoint, but also returns the container version and metadata.
Checkpoint load_checkpoint_full(const std::string& path);

/// Atomically publishes `data` at `path`: writes `path + ".tmp"`, fsyncs,
/// then rename(2)s over the destination (and best-effort fsyncs the parent
/// directory).  On failure the temp file is removed and the previous file at
/// `path`, if any, is left untouched.
void atomic_write_file(const std::string& path, const std::string& data);

namespace testing {
/// Test-only fault injection: when set, invoked after the temp file is
/// written and fsynced but *before* the rename that publishes it.  Throwing
/// from the hook simulates a crash mid-checkpoint; atomic_write_file then
/// cleans up the temp file and propagates, leaving the previous checkpoint
/// intact.  Not thread-safe; tests must reset it to nullptr when done.
extern std::function<void()> checkpoint_pre_rename_hook;
}  // namespace testing

}  // namespace spiketune
