#include "core/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/crc32.h"
#include "core/error.h"

namespace spiketune {

namespace testing {
std::function<void()> checkpoint_pre_rename_hook;
}  // namespace testing

namespace {
constexpr std::uint32_t kMagicV1 = 0x53544b31;  // "STK1"
constexpr std::uint32_t kMagicV2 = 0x53544b32;  // "STK2"
constexpr std::uint64_t kMaxRecords = 1u << 20;
constexpr std::uint64_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxRank = 16;
constexpr std::uint64_t kMaxMetaEntries = 1u << 12;
constexpr std::int64_t kMaxNumel = std::int64_t{1} << 33;

// ---- buffer-building writer -----------------------------------------------

template <typename T>
void append_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void append_bytes(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

void append_record(std::string& out, const NamedTensor& rec) {
  append_pod(out, static_cast<std::uint64_t>(rec.name.size()));
  append_bytes(out, rec.name.data(), rec.name.size());
  const auto& dims = rec.value.shape().dims();
  append_pod(out, static_cast<std::uint64_t>(dims.size()));
  for (auto d : dims) append_pod(out, static_cast<std::int64_t>(d));
  append_bytes(out, rec.value.data(),
               static_cast<std::size_t>(rec.value.numel()) * sizeof(float));
}

void append_string(std::string& out, const std::string& s) {
  append_pod(out, static_cast<std::uint64_t>(s.size()));
  append_bytes(out, s.data(), s.size());
}

void append_meta(std::string& out, const CheckpointMeta& meta) {
  const std::size_t begin = out.size();
  append_pod(out, meta.epoch);
  append_pod(out, meta.opt_step);
  append_pod(out, meta.encode_stream);
  append_pod(out, meta.eval_calls);
  append_pod(out, meta.loader_seed);
  append_pod(out, meta.config_fingerprint);
  append_pod(out, meta.lr_scale);
  append_pod(out, static_cast<std::uint64_t>(meta.extra.size()));
  for (const auto& [k, v] : meta.extra) {
    append_string(out, k);
    append_string(out, v);
  }
  append_pod(out, crc32(out.data() + begin, out.size() - begin));
}

// ---- bounds-checked reader ------------------------------------------------

struct Reader {
  const std::string& buf;
  const std::string& path;
  std::size_t pos = 0;

  std::size_t remaining() const { return buf.size() - pos; }

  const char* take(std::size_t n) {
    ST_REQUIRE(remaining() >= n, "truncated checkpoint: " + path);
    const char* p = buf.data() + pos;
    pos += n;
    return p;
  }

  template <typename T>
  T pod() {
    T v{};
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }

  std::string str(std::uint64_t max_len, const char* what) {
    const auto len = pod<std::uint64_t>();
    ST_REQUIRE(len <= max_len,
               std::string("absurd ") + what + " length in " + path);
    return std::string(take(len), len);
  }
};

NamedTensor read_record(Reader& in) {
  NamedTensor rec;
  rec.name = in.str(kMaxNameLen, "name");
  const auto rank = in.pod<std::uint64_t>();
  ST_REQUIRE(rank <= kMaxRank, "absurd tensor rank in " + in.path);
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    d = in.pod<std::int64_t>();
    ST_REQUIRE(d >= 0, "negative dimension in " + in.path);
  }
  Shape shape(std::move(dims));
  ST_REQUIRE(shape.numel() <= kMaxNumel, "absurd tensor size in " + in.path);
  Tensor value(shape);
  const std::size_t bytes =
      static_cast<std::size_t>(value.numel()) * sizeof(float);
  std::memcpy(value.data(), in.take(bytes), bytes);
  rec.value = std::move(value);
  return rec;
}

CheckpointMeta read_meta(Reader& in) {
  const std::size_t begin = in.pos;
  CheckpointMeta meta;
  meta.present = true;
  meta.epoch = in.pod<std::int64_t>();
  meta.opt_step = in.pod<std::int64_t>();
  meta.encode_stream = in.pod<std::uint64_t>();
  meta.eval_calls = in.pod<std::uint64_t>();
  meta.loader_seed = in.pod<std::uint64_t>();
  meta.config_fingerprint = in.pod<std::uint64_t>();
  meta.lr_scale = in.pod<double>();
  const auto extra_count = in.pod<std::uint64_t>();
  ST_REQUIRE(extra_count <= kMaxMetaEntries,
             "absurd metadata entry count in " + in.path);
  for (std::uint64_t i = 0; i < extra_count; ++i) {
    std::string k = in.str(kMaxNameLen, "metadata key");
    meta.extra[k] = in.str(kMaxNameLen, "metadata value");
  }
  const std::size_t end = in.pos;
  const auto stored = in.pod<std::uint32_t>();
  ST_REQUIRE(stored == crc32(in.buf.data() + begin, end - begin),
             "metadata CRC mismatch in " + in.path);
  return meta;
}

void save_v2(const std::string& path, const std::vector<NamedTensor>& records,
             const CheckpointMeta* meta) {
  std::string buf;
  append_pod(buf, kMagicV2);
  append_pod(buf, std::uint32_t{2});
  append_pod(buf, static_cast<std::uint8_t>(meta != nullptr));
  if (meta) append_meta(buf, *meta);
  append_pod(buf, static_cast<std::uint64_t>(records.size()));
  for (const auto& rec : records) {
    const std::size_t begin = buf.size();
    append_record(buf, rec);
    append_pod(buf, crc32(buf.data() + begin, buf.size() - begin));
  }
  // Whole-file CRC over everything before the trailer: catches truncation
  // even at record boundaries, where every per-record CRC still matches.
  append_pod(buf, crc32(buf.data(), buf.size()));
  atomic_write_file(path, buf);
}
}  // namespace

void atomic_write_file(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ST_REQUIRE(fd >= 0, "cannot open temp file for writing: " + tmp + " (" +
                          std::strerror(errno) + ")");
  auto fail = [&](const std::string& what) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw Error(what + ": " + tmp);
  };
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("checkpoint write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  // Durability point: the temp file's bytes reach disk before the rename
  // can publish them, so the final path never names a half-written file.
  if (::fsync(fd) != 0) fail("checkpoint fsync failed");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw Error("checkpoint close failed: " + tmp);
  }
  if (testing::checkpoint_pre_rename_hook) {
    try {
      testing::checkpoint_pre_rename_hook();
    } catch (...) {
      ::unlink(tmp.c_str());
      throw;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw Error("checkpoint rename failed: " + tmp + " -> " + path);
  }
  // Best-effort: persist the directory entry too, so the rename itself
  // survives power loss.  Failure here leaves a valid file either way.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records) {
  save_v2(path, records, nullptr);
}

void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records,
                     const CheckpointMeta& meta) {
  save_v2(path, records, &meta);
}

void save_checkpoint_v1(const std::string& path,
                        const std::vector<NamedTensor>& records) {
  std::string buf;
  append_pod(buf, kMagicV1);
  append_pod(buf, std::uint32_t{1});
  append_pod(buf, static_cast<std::uint64_t>(records.size()));
  for (const auto& rec : records) append_record(buf, rec);
  atomic_write_file(path, buf);
}

Checkpoint load_checkpoint_full(const std::string& path) {
  std::string buf;
  {
    std::ifstream in(path, std::ios::binary);
    ST_REQUIRE(in.good(), "cannot open checkpoint: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    ST_REQUIRE(!in.bad(), "cannot read checkpoint: " + path);
    buf = std::move(ss).str();
  }
  Reader in{buf, path};
  const auto magic = in.pod<std::uint32_t>();
  ST_REQUIRE(magic == kMagicV1 || magic == kMagicV2,
             "not a spiketune checkpoint: " + path);

  Checkpoint out;
  out.version = in.pod<std::uint32_t>();
  if (magic == kMagicV1) {
    ST_REQUIRE(out.version == 1, "unsupported checkpoint version: " + path);
  } else {
    ST_REQUIRE(out.version == 2, "unsupported checkpoint version: " + path);
    // Verify the whole-file CRC before trusting any length field.
    ST_REQUIRE(buf.size() >= in.pos + sizeof(std::uint32_t),
               "truncated checkpoint: " + path);
    std::uint32_t stored = 0;
    std::memcpy(&stored, buf.data() + buf.size() - sizeof(stored),
                sizeof(stored));
    ST_REQUIRE(stored == crc32(buf.data(), buf.size() - sizeof(stored)),
               "checkpoint CRC mismatch (corrupt or torn write): " + path);
    if (in.pod<std::uint8_t>() != 0) out.meta = read_meta(in);
  }

  const auto count = in.pod<std::uint64_t>();
  ST_REQUIRE(count <= kMaxRecords, "absurd record count in " + path);
  out.records.reserve(count);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::size_t begin = in.pos;
    out.records.push_back(read_record(in));
    if (out.version >= 2) {
      const std::size_t end = in.pos;
      const auto stored = in.pod<std::uint32_t>();
      ST_REQUIRE(stored == crc32(buf.data() + begin, end - begin),
                 "record CRC mismatch for '" + out.records.back().name +
                     "' in " + path);
    }
  }
  if (out.version >= 2) {
    ST_REQUIRE(in.remaining() == sizeof(std::uint32_t),
               "trailing garbage in checkpoint: " + path);
  }
  return out;
}

std::vector<NamedTensor> load_checkpoint(const std::string& path) {
  return load_checkpoint_full(path).records;
}

}  // namespace spiketune
