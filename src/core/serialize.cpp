#include "core/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "core/error.h"

namespace spiketune {

namespace {
constexpr std::uint32_t kMagic = 0x53544b31;  // "STK1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxRecords = 1u << 20;
constexpr std::uint64_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxRank = 16;
constexpr std::int64_t kMaxNumel = std::int64_t{1} << 33;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  ST_REQUIRE(in.good(), "truncated checkpoint: " + path);
  return v;
}
}  // namespace

void save_checkpoint(const std::string& path,
                     const std::vector<NamedTensor>& records) {
  std::ofstream out(path, std::ios::binary);
  ST_REQUIRE(out.good(), "cannot open checkpoint for writing: " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(records.size()));
  for (const auto& rec : records) {
    write_pod(out, static_cast<std::uint64_t>(rec.name.size()));
    out.write(rec.name.data(),
              static_cast<std::streamsize>(rec.name.size()));
    const auto& dims = rec.value.shape().dims();
    write_pod(out, static_cast<std::uint64_t>(dims.size()));
    for (auto d : dims) write_pod(out, static_cast<std::int64_t>(d));
    out.write(reinterpret_cast<const char*>(rec.value.data()),
              static_cast<std::streamsize>(rec.value.numel() *
                                           sizeof(float)));
  }
  out.flush();
  ST_REQUIRE(out.good(), "checkpoint write failed: " + path);
}

std::vector<NamedTensor> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ST_REQUIRE(in.good(), "cannot open checkpoint: " + path);
  ST_REQUIRE(read_pod<std::uint32_t>(in, path) == kMagic,
             "not a spiketune checkpoint: " + path);
  ST_REQUIRE(read_pod<std::uint32_t>(in, path) == kVersion,
             "unsupported checkpoint version: " + path);
  const auto count = read_pod<std::uint64_t>(in, path);
  ST_REQUIRE(count <= kMaxRecords, "absurd record count in " + path);

  std::vector<NamedTensor> records;
  records.reserve(count);
  for (std::uint64_t r = 0; r < count; ++r) {
    const auto name_len = read_pod<std::uint64_t>(in, path);
    ST_REQUIRE(name_len <= kMaxNameLen, "absurd name length in " + path);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    ST_REQUIRE(in.good(), "truncated checkpoint: " + path);

    const auto rank = read_pod<std::uint64_t>(in, path);
    ST_REQUIRE(rank <= kMaxRank, "absurd tensor rank in " + path);
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) {
      d = read_pod<std::int64_t>(in, path);
      ST_REQUIRE(d >= 0, "negative dimension in " + path);
    }
    Shape shape(std::move(dims));
    ST_REQUIRE(shape.numel() <= kMaxNumel, "absurd tensor size in " + path);

    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    ST_REQUIRE(in.good(), "truncated checkpoint payload: " + path);
    records.push_back(NamedTensor{std::move(name), std::move(value)});
  }
  return records;
}

}  // namespace spiketune
