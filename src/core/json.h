// Minimal JSON value: build, serialize, parse.
//
// The run ledger (obs/ledger.h) writes self-describing JSONL records whose
// epoch entries carry nested per-layer arrays and hardware-projection
// objects, which the sweep journal's flat parser cannot represent.  This is
// the shared JSON layer: an ordered-object value type (insertion order is
// preserved so written records keep a stable, diff-friendly field order), a
// compact single-line serializer suitable for JSONL, and a strict recursive
// parser that rejects torn or trailing input.  Numbers are IEEE doubles;
// exact 64-bit identities (fingerprints, seeds) are carried as hex strings
// by convention.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spiketune {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered key/value pairs (objects here are small; lookup is a
  /// linear scan and serialization preserves the order fields were added).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double v) : type_(Type::kNumber), num_(v) {}
  JsonValue(int v) : type_(Type::kNumber), num_(v) {}
  JsonValue(std::int64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}
  JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static JsonValue make_array() { return JsonValue(Type::kArray); }
  static JsonValue make_object() { return JsonValue(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup: pointer to the value, or nullptr when absent (or
  /// when this value is not an object).
  const JsonValue* find(const std::string& key) const;
  /// Convenience getters with defaults for absent/mistyped fields.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  /// Appends to an array value (throws unless is_array()).
  void push_back(JsonValue v);
  /// Sets (appends or overwrites) an object field (throws unless
  /// is_object()).
  void set(const std::string& key, JsonValue v);

  /// Compact single-line serialization (JSONL-friendly; no whitespace).
  std::string dump() const;

  /// Strict parse of exactly one JSON document; trailing non-whitespace,
  /// truncation, or malformed input throws InvalidArgument mentioning
  /// `context` (e.g. "ledger.jsonl:12").
  static JsonValue parse(const std::string& text,
                         const std::string& context = "json");

 private:
  explicit JsonValue(Type t) : type_(t) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string json_quote(const std::string& s);

}  // namespace spiketune
