// Error handling for spiketune.
//
// Following the C++ Core Guidelines (E.2, E.3) we throw exceptions to signal
// violated preconditions and unrecoverable errors, and we keep the throwing
// sites expressive via the ST_CHECK / ST_REQUIRE macros below.  Internal
// invariants that should be unreachable use ST_ASSERT, which is compiled in
// all build types (these models feed published numbers; silent corruption is
// worse than an abort).
#pragma once

#include <stdexcept>
#include <string>

namespace spiketune {

/// Base class for all spiketune errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, bad config...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug in spiketune itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A numerical health check tripped (NaN/Inf loss or gradients).  Thrown by
/// the trainer's guard rails under NanPolicy::kThrow, and as the terminal
/// error when skip/rollback recovery is exhausted.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& msg);
}  // namespace detail

}  // namespace spiketune

/// Validate a caller-supplied condition; throws InvalidArgument on failure.
#define ST_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::spiketune::detail::throw_invalid_argument(#cond, __FILE__,         \
                                                  __LINE__, (msg));        \
    }                                                                      \
  } while (false)

/// Validate an internal invariant; throws InternalError on failure.
#define ST_ASSERT(cond, msg)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::spiketune::detail::throw_internal_error(#cond, __FILE__, __LINE__, \
                                                (msg));                    \
    }                                                                      \
  } while (false)
