// Surrogate gradient function tests: closed-form values, symmetry,
// derivative-of-forward consistency, and the paper's parameterization.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "snn/surrogate.h"

namespace spiketune::snn {
namespace {

constexpr float kPi = 3.14159265358979323846f;

TEST(Surrogate, ArctanGradClosedForm) {
  // dS/dU = (alpha/2) / (1 + (pi U alpha / 2)^2)   (paper Eq. 3)
  const float alpha = 2.0f;
  Surrogate s = Surrogate::arctan(alpha);
  EXPECT_NEAR(s.grad(0.0f), alpha / 2.0f, 1e-6f);
  const float u = 0.7f;
  const float z = kPi * u * alpha / 2.0f;
  EXPECT_NEAR(s.grad(u), (alpha / 2.0f) / (1.0f + z * z), 1e-6f);
}

TEST(Surrogate, FastSigmoidGradClosedForm) {
  // dS/dU = 1 / (1 + k |U|)^2   (paper Eq. 4)
  const float k = 25.0f;
  Surrogate s = Surrogate::fast_sigmoid(k);
  EXPECT_NEAR(s.grad(0.0f), 1.0f, 1e-6f);
  const float u = -0.1f;
  const float d = 1.0f + k * std::fabs(u);
  EXPECT_NEAR(s.grad(u), 1.0f / (d * d), 1e-6f);
}

class SurrogateKinds : public ::testing::TestWithParam<std::string> {};

TEST_P(SurrogateKinds, GradIsEvenFunction) {
  Surrogate s = Surrogate::by_name(GetParam(), 2.0f);
  for (float v : {0.1f, 0.5f, 1.0f, 3.0f})
    EXPECT_NEAR(s.grad(v), s.grad(-v), 1e-6f) << GetParam() << " v=" << v;
}

TEST_P(SurrogateKinds, GradPeaksAtThreshold) {
  Surrogate s = Surrogate::by_name(GetParam(), 2.0f);
  const float at0 = s.grad(0.0f);
  for (float v : {0.5f, 1.0f, 2.0f})
    EXPECT_GE(at0, s.grad(v)) << GetParam() << " v=" << v;
}

TEST_P(SurrogateKinds, GradNonNegative) {
  Surrogate s = Surrogate::by_name(GetParam(), 1.5f);
  for (float v = -4.0f; v <= 4.0f; v += 0.25f)
    EXPECT_GE(s.grad(v), 0.0f) << GetParam() << " v=" << v;
}

TEST_P(SurrogateKinds, GradMatchesForwardDerivative) {
  // Central difference of the smooth forward must match grad().
  Surrogate s = Surrogate::by_name(GetParam(), 2.0f);
  const float h = 1e-3f;
  for (float v : {-1.3f, -0.4f, 0.05f, 0.6f, 2.0f}) {
    if (GetParam() == "boxcar" || GetParam() == "straight_through")
      continue;  // piecewise-constant grads: FD invalid at kinks
    const float fd = (s.forward(v + h) - s.forward(v - h)) / (2.0f * h);
    EXPECT_NEAR(s.grad(v), fd, 5e-3f) << GetParam() << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SurrogateKinds,
                         ::testing::Values("arctan", "fast_sigmoid",
                                           "sigmoid", "triangular", "boxcar",
                                           "straight_through"));

TEST(Surrogate, ScaleSharpensArctan) {
  // Larger alpha -> narrower, taller gradient bump.
  Surrogate narrow = Surrogate::arctan(8.0f);
  Surrogate wide = Surrogate::arctan(0.5f);
  EXPECT_GT(narrow.grad(0.0f), wide.grad(0.0f));
  EXPECT_LT(narrow.grad(1.0f), wide.grad(1.0f));
}

TEST(Surrogate, ScaleNarrowsFastSigmoid) {
  // Larger k decays the fast-sigmoid gradient faster away from threshold,
  // while the peak stays at 1 — the asymmetry the paper exploits.
  Surrogate steep = Surrogate::fast_sigmoid(32.0f);
  Surrogate shallow = Surrogate::fast_sigmoid(0.5f);
  EXPECT_NEAR(steep.grad(0.0f), shallow.grad(0.0f), 1e-6f);
  EXPECT_LT(steep.grad(0.5f), shallow.grad(0.5f));
}

TEST(Surrogate, TriangularHasCompactSupport) {
  Surrogate s = Surrogate::triangular(2.0f);
  EXPECT_GT(s.grad(0.4f), 0.0f);
  EXPECT_EQ(s.grad(0.6f), 0.0f);  // support |v| < 1/k = 0.5
}

TEST(Surrogate, BoxcarWindow) {
  Surrogate s = Surrogate::boxcar(2.0f);
  EXPECT_EQ(s.grad(0.49f), 1.0f);  // 0.5 * k inside |v| < 1/k
  EXPECT_EQ(s.grad(0.51f), 0.0f);
}

TEST(Surrogate, StraightThroughIsUnity) {
  Surrogate s = Surrogate::straight_through();
  for (float v : {-2.0f, 0.0f, 2.0f}) EXPECT_EQ(s.grad(v), 1.0f);
}

TEST(Surrogate, ByNameRejectsUnknown) {
  EXPECT_THROW(Surrogate::by_name("tanh", 1.0f), InvalidArgument);
}

TEST(Surrogate, NonPositiveScaleRejected) {
  EXPECT_THROW(Surrogate::arctan(0.0f), InvalidArgument);
  EXPECT_THROW(Surrogate::fast_sigmoid(-1.0f), InvalidArgument);
}

TEST(Surrogate, NamesRoundTrip) {
  for (const char* n : {"arctan", "fast_sigmoid", "sigmoid", "triangular",
                        "boxcar", "straight_through"})
    EXPECT_EQ(Surrogate::by_name(n, 1.0f).name(), n);
}

}  // namespace
}  // namespace spiketune::snn
