// GEMM kernels vs a naive reference, including a property-style sweep over
// shapes (parameterized) and alpha/beta handling.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/rng.h"
#include "tensor/gemm.h"

namespace spiketune {
namespace {

std::vector<float> random_matrix(std::int64_t n, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

void reference_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.5f);
  std::vector<float> ref = c;

  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  reference_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

TEST_P(GemmShapes, TransposedAMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 13 + k * 17));
  // A stored as [k, m]; reference computes with A'[m, k].
  const auto a_t = random_matrix(k * m, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t i = 0; i < m; ++i) a[i * k + p] = a_t[p * m + i];

  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> ref = c;
  gemm_tn(m, n, k, 1.0f, a_t.data(), b.data(), 0.0f, c.data());
  reference_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

TEST_P(GemmShapes, TransposedBMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 5 + k * 7));
  const auto a = random_matrix(m * k, rng);
  // B stored as [n, k]; reference computes with B'[k, n].
  const auto b_t = random_matrix(n * k, rng);
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t p = 0; p < k; ++p) b[p * n + j] = b_t[j * k + p];

  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> ref = c;
  gemm_nt(m, n, k, 1.0f, a.data(), b_t.data(), 0.0f, c.data());
  reference_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 9),
                      std::make_tuple(65, 3, 130), std::make_tuple(70, 300, 2),
                      std::make_tuple(128, 33, 257)));

TEST(Gemm, AlphaBetaComposition) {
  const std::int64_t m = 4, n = 3, k = 5;
  Rng rng(9);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 2.0f);
  std::vector<float> ref = c;
  gemm(m, n, k, 0.5f, a.data(), b.data(), 0.25f, c.data());
  reference_gemm(m, n, k, 0.5f, a.data(), b.data(), 0.25f, ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(Gemm, BetaOnePreservesAccumulator) {
  const std::int64_t m = 2, n = 2, k = 2;
  const std::vector<float> a{1, 0, 0, 1};
  const std::vector<float> b{1, 2, 3, 4};
  std::vector<float> c{10, 10, 10, 10};
  gemm(m, n, k, 1.0f, a.data(), b.data(), 1.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  const std::int64_t m = 2, n = 2, k = 2;
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c{1, 2, 3, 4};
  gemm(m, n, k, 0.0f, a.data(), b.data(), 0.5f, c.data());
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

TEST(Gemm, SparseInputCorrect) {
  // Exercise the zero-skip fast path with a mostly-zero (spike-like) A.
  const std::int64_t m = 8, n = 16, k = 32;
  Rng rng(5);
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  for (auto& v : a)
    if (rng.bernoulli(0.1)) v = 1.0f;
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> ref = c;
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  reference_gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

}  // namespace
}  // namespace spiketune
