// Streaming stateful inference tests: StreamState parity against the
// whole-window path, StreamManager lifecycle / LRU eviction / bit-exact
// restore, the v3 wire messages, RequestBuilder byte-compatibility with the
// legacy payload encoders, and the batcher's same-stream exclusion rule.
//
// The central contract (DESIGN.md §15): feeding a window through step()
// one timestep at a time — in any chunking, through any batch of
// co-resident streams, before or after an eviction/restore round-trip —
// produces cumulative spike counts BITWISE identical to one
// InferenceSession::run (and so to SpikingNetwork::forward) on the same
// window, at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "infer/session.h"
#include "infer/stream.h"
#include "serve/batcher.h"
#include "serve/protocol.h"
#include "snn/model_zoo.h"

namespace spiketune::infer {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(int threads) { set_num_threads(threads); }
  ~ThreadGuard() { set_num_threads(1); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A window of `steps` per-sample event tensors, each element nonzero with
// probability `density` — the per-stream analogue of test_infer's windows.
std::vector<Tensor> sample_window(std::int64_t steps, const Shape& per_sample,
                                  double density, Rng& rng) {
  std::vector<Tensor> window;
  window.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t t = 0; t < steps; ++t) {
    Tensor x = Tensor::full(per_sample, 0.0f);
    float* p = x.data();
    for (std::int64_t i = 0; i < x.numel(); ++i)
      if (rng.uniform() < density) p[i] = 1.0f;
    window.push_back(std::move(x));
  }
  return window;
}

// The same window reshaped to the [1, ...] batch layout run() expects.
std::vector<Tensor> batched_view(const std::vector<Tensor>& window) {
  std::vector<Tensor> out;
  out.reserve(window.size());
  for (const Tensor& step : window) {
    std::vector<std::int64_t> dims{1};
    for (std::int64_t d : step.shape().dims()) dims.push_back(d);
    Tensor x{Shape(dims)};
    std::memcpy(x.data(), step.data(),
                static_cast<std::size_t>(step.numel()) * sizeof(float));
    out.push_back(std::move(x));
  }
  return out;
}

void expect_counts_equal(const std::vector<float>& want,
                         const std::vector<float>& got,
                         const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  EXPECT_EQ(std::memcmp(want.data(), got.data(),
                        want.size() * sizeof(float)),
            0)
      << what << ": cumulative spike counts differ bitwise";
}

TEST(StreamParity, StepByStepMatchesWholeWindowBitwise) {
  snn::MlpConfig cfg;
  cfg.in_features = 40;
  cfg.hidden = 20;
  cfg.num_classes = 10;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{40});
  Rng rng(0x57e9);
  const auto window = sample_window(7, Shape{40}, 0.3, rng);
  const auto batched = batched_view(window);
  const auto dense = net->forward(batched, {});
  const std::int64_t out = model.output_shape()[0];
  const std::vector<float> want(dense.spike_counts.data(),
                                dense.spike_counts.data() + out);

  // Sparse-forced, dense-forced, and the default heuristic must all agree,
  // at 1 and 4 threads.
  for (double crossover : {1.5, -1.0, 0.35}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE("crossover=" + std::to_string(crossover) +
                   " threads=" + std::to_string(threads));
      ThreadGuard guard(threads);
      InferenceSession session(model, {.max_batch = 1,
                                       .sparse_crossover = crossover});
      StreamState stream = session.make_stream();
      std::vector<float> per_step_total(static_cast<std::size_t>(out), 0.0f);
      for (const Tensor& events : window) {
        const Tensor spikes = session.step(stream, events);
        ASSERT_EQ(spikes.numel(), out);
        for (std::int64_t i = 0; i < out; ++i)
          per_step_total[static_cast<std::size_t>(i)] += spikes.data()[i];
      }
      EXPECT_EQ(stream.steps_done(), 7);
      expect_counts_equal(want, stream.cumulative_counts(), "cumulative");
      expect_counts_equal(want, per_step_total, "sum of per-step outputs");
    }
  }
}

TEST(StreamParity, ChunkedWindowsMatchOneWindow) {
  // A client that sends 2+5 steps must land exactly where one that sent 7
  // at once does — chunk boundaries carry no state of their own.
  snn::MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = 16;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{32});
  Rng rng(0xc4a9);
  const auto window = sample_window(7, Shape{32}, 0.4, rng);
  const auto batched = batched_view(window);

  InferenceSession session(model, {.max_batch = 1});
  const auto whole = session.run(batched);

  StreamState stream = session.make_stream();
  StreamState* ptr = &stream;
  const std::vector<Tensor> first(batched.begin(), batched.begin() + 2);
  const std::vector<Tensor> second(batched.begin() + 2, batched.end());
  session.run(&ptr, 1, first);
  const auto tail = session.run(&ptr, 1, second);

  const std::int64_t out = model.output_shape()[0];
  const std::vector<float> want(whole.spike_counts.data(),
                                whole.spike_counts.data() + out);
  EXPECT_EQ(stream.steps_done(), 7);
  expect_counts_equal(want, stream.cumulative_counts(), "chunked 2+5");
  // The second chunk's window counts are the tail only, not the total.
  EXPECT_EQ(tail.timesteps, 5);
}

TEST(StreamParity, MixedAgeBatchMatchesSoloStreams) {
  // The serving batcher co-schedules streams at different ages.  Each row
  // of a batched step_batch call must match a replica stream stepped alone
  // through the same inputs.
  snn::MlpConfig cfg;
  cfg.in_features = 24;
  cfg.hidden = 12;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{24});
  const std::int64_t kStreams = 4;
  Rng rng(0xba7c4);

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadGuard guard(threads);
    InferenceSession batched(model, {.max_batch = kStreams});
    InferenceSession solo(model, {.max_batch = 1});
    std::vector<StreamState> streams;
    std::vector<StreamState> replicas;
    for (std::int64_t s = 0; s < kStreams; ++s) {
      streams.push_back(batched.make_stream());
      replicas.push_back(solo.make_stream());
    }
    // Age the streams unevenly: stream s gets s warm-up chunks of 2 steps.
    Rng warm(0x11 + static_cast<std::uint64_t>(threads));
    for (std::int64_t s = 0; s < kStreams; ++s) {
      for (std::int64_t c = 0; c < s; ++c) {
        Rng fork = warm;  // identical inputs for stream and replica
        for (const Tensor& e : sample_window(2, Shape{24}, 0.3, warm))
          batched.step(streams[static_cast<std::size_t>(s)], e);
        for (const Tensor& e : sample_window(2, Shape{24}, 0.3, fork))
          solo.step(replicas[static_cast<std::size_t>(s)], e);
      }
    }
    // One shared 3-step batch window across all four streams...
    const auto shared = sample_window(3, Shape{kStreams, 24}, 0.35, warm);
    std::vector<StreamState*> ptrs;
    for (auto& s : streams) ptrs.push_back(&s);
    batched.run(ptrs.data(), kStreams, shared);
    // ...and the same rows fed solo to each replica.
    const std::int64_t elems = 24;
    for (std::int64_t s = 0; s < kStreams; ++s) {
      for (const Tensor& step : shared) {
        Tensor row{Shape{elems}};
        std::memcpy(row.data(), step.data() + s * elems,
                    static_cast<std::size_t>(elems) * sizeof(float));
        solo.step(replicas[static_cast<std::size_t>(s)], row);
      }
      SCOPED_TRACE("stream=" + std::to_string(s));
      EXPECT_EQ(streams[static_cast<std::size_t>(s)].steps_done(),
                replicas[static_cast<std::size_t>(s)].steps_done());
      expect_counts_equal(replicas[static_cast<std::size_t>(s)]
                              .cumulative_counts(),
                          streams[static_cast<std::size_t>(s)]
                              .cumulative_counts(),
                          "batched vs solo");
    }
  }
}

TEST(StreamParity, EvictRestoreRoundTripIsBitExact) {
  // Three streams bounced through a manager that can hold one in memory:
  // every chunk boundary forces an eviction, and every acquire a restore.
  // Counts AND the raw membrane arena must match never-evicted replicas.
  snn::MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = 16;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{32});
  const std::uint64_t kIds[] = {11, 22, 33};

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadGuard guard(threads);
    const std::string dir =
        fresh_dir("stream_evict_t" + std::to_string(threads));
    StreamManager manager(model, /*max_live=*/1, dir);
    InferenceSession session(model, {.max_batch = 1});
    InferenceSession ref_session(model, {.max_batch = 1});
    std::vector<StreamState> replicas;
    for (std::uint64_t id : kIds) {
      ASSERT_EQ(manager.open(id), StreamManager::OpenResult::kOk);
      replicas.push_back(ref_session.make_stream());
    }

    Rng rng(0xe71c + static_cast<std::uint64_t>(threads));
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < 3; ++i) {
        const auto chunk = sample_window(2, Shape{1, 32}, 0.4, rng);
        StreamState* st = manager.acquire(kIds[i]);
        ASSERT_NE(st, nullptr);
        StreamState* ptr = st;
        session.run(&ptr, 1, chunk);
        manager.release(kIds[i]);
        StreamState* rep = &replicas[i];
        ref_session.run(&rep, 1, chunk);
      }
    }

    const auto counters = manager.counters();
    EXPECT_GT(counters.evicted, 0) << "max_live=1 with 3 streams must spill";
    EXPECT_GT(counters.restored, 0);

    for (std::size_t i = 0; i < 3; ++i) {
      SCOPED_TRACE("stream=" + std::to_string(kIds[i]));
      StreamState* st = manager.acquire(kIds[i]);
      ASSERT_NE(st, nullptr);
      EXPECT_EQ(st->steps_done(), replicas[i].steps_done());
      expect_counts_equal(replicas[i].cumulative_counts(),
                          st->cumulative_counts(), "counts after evict");
      ASSERT_EQ(st->membrane_arena().size(),
                replicas[i].membrane_arena().size());
      EXPECT_EQ(std::memcmp(st->membrane_arena().data(),
                            replicas[i].membrane_arena().data(),
                            st->membrane_arena().size() * sizeof(float)),
                0)
          << "membrane arena differs after an evict/restore round-trip";
      manager.release(kIds[i]);
    }
  }
}

TEST(StreamManager, LifecycleOpenAcquireCloseAndCapacity) {
  snn::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{16});

  // No spill directory: the in-memory bound is a hard capacity limit.
  StreamManager manager(model, /*max_live=*/2, "");
  EXPECT_EQ(manager.open(0), StreamManager::OpenResult::kInvalid);
  EXPECT_EQ(manager.open(7), StreamManager::OpenResult::kOk);
  EXPECT_EQ(manager.open(7), StreamManager::OpenResult::kExists);
  EXPECT_EQ(manager.open(8), StreamManager::OpenResult::kOk);
  EXPECT_EQ(manager.open(9), StreamManager::OpenResult::kCapacity);
  EXPECT_TRUE(manager.contains(7));
  EXPECT_FALSE(manager.contains(9));
  EXPECT_EQ(manager.acquire(9), nullptr);
  EXPECT_EQ(manager.acquire(0), nullptr);

  StreamState* st = manager.acquire(7);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->steps_done(), 0);
  manager.release(7);

  std::vector<float> final_counts;
  std::int64_t final_steps = -1;
  EXPECT_TRUE(manager.close(7, &final_counts, &final_steps));
  EXPECT_EQ(final_steps, 0);
  EXPECT_EQ(final_counts.size(),
            static_cast<std::size_t>(model.output_shape()[0]));
  EXPECT_FALSE(manager.contains(7));
  EXPECT_FALSE(manager.close(7, nullptr, nullptr));  // already gone
  // The closed slot frees capacity for a new stream.
  EXPECT_EQ(manager.open(9), StreamManager::OpenResult::kOk);

  const auto counters = manager.counters();
  EXPECT_EQ(counters.opened, 3);
  EXPECT_EQ(counters.closed, 1);
  EXPECT_EQ(counters.live, 2);
  EXPECT_EQ(counters.peak_live, 2);
  EXPECT_EQ(counters.evicted, 0);
}

TEST(StreamManager, CorruptSpillFailsTheAcquireButNotTheManager) {
  // An unreadable spill file must surface as a per-stream exception the
  // serving worker can answer with internal-error — never as a manager
  // left in a half-restored state.  After the failed restore the entry
  // must still be consistent: a retried acquire throws again (no UB on a
  // dangling LRU iterator), other streams are untouched, and a totals-free
  // close still tears the broken stream down.
  snn::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{16});
  const std::string dir = fresh_dir("stream_corrupt");
  StreamManager manager(model, /*max_live=*/1, dir);
  ASSERT_EQ(manager.open(1), StreamManager::OpenResult::kOk);
  ASSERT_EQ(manager.open(2), StreamManager::OpenResult::kOk);  // evicts 1

  // Truncate stream 1's spill to garbage.
  std::string spill;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    spill = e.path().string();
  ASSERT_FALSE(spill.empty());
  {
    std::ofstream f(spill, std::ios::binary | std::ios::trunc);
    f << "not an STK2 container";
  }

  EXPECT_THROW(manager.acquire(1), Error);
  EXPECT_THROW(manager.acquire(1), Error);  // retried, still clean
  EXPECT_TRUE(manager.contains(1));

  // The healthy stream is unaffected (acquiring it evicts nothing broken).
  StreamState* ok = manager.acquire(2);
  ASSERT_NE(ok, nullptr);
  manager.release(2);

  // Totals require a restore, so they are lost — but a totals-free close
  // must still free the id, and the slot is reusable afterwards.
  std::int64_t steps = 0;
  EXPECT_THROW(manager.close(1, nullptr, &steps), Error);
  EXPECT_TRUE(manager.close(1, nullptr, nullptr));
  EXPECT_FALSE(manager.contains(1));
  EXPECT_EQ(manager.open(1), StreamManager::OpenResult::kOk);
  StreamState* reopened = manager.acquire(1);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->steps_done(), 0);
  manager.release(1);
}

TEST(StreamManager, CheckpointAllWritesEachOpenStreamExactlyOnce) {
  snn::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{16});
  const std::string dir = fresh_dir("stream_drain");
  StreamManager manager(model, /*max_live=*/8, dir);
  for (std::uint64_t id : {1, 2, 3})
    ASSERT_EQ(manager.open(id), StreamManager::OpenResult::kOk);

  EXPECT_EQ(manager.checkpoint_all(), 3u);
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 3u);
  EXPECT_EQ(manager.counters().checkpointed, 3);

  // Spilling disabled: drain writes nothing and reports nothing.
  StreamManager bare(model, /*max_live=*/8, "");
  ASSERT_EQ(bare.open(4), StreamManager::OpenResult::kOk);
  EXPECT_EQ(bare.checkpoint_all(), 0u);
}

}  // namespace
}  // namespace spiketune::infer

namespace spiketune::serve {
namespace {

// --- v3 wire messages -------------------------------------------------------

TEST(StreamProtocol, ControlStepAndCloseReplyRoundTrip) {
  StreamControl ctl;
  ctl.request_id = 5;
  ctl.stream_id = 0xdeadbeefcafe0001ULL;
  const StreamControl cback =
      decode_stream_control(5, detail::encode_stream_control_payload(ctl));
  EXPECT_EQ(cback.stream_id, ctl.stream_id);

  StreamStepRequest step;
  step.stream_id = 42;
  step.request.request_id = 6;
  step.request.num_steps = 2;
  step.request.elems_per_step = 3;
  step.request.deadline_us = 1500;
  step.request.data = {1.0f, 0.0f, 1.0f, 0.0f, 1.0f, 1.0f};
  const StreamStepRequest sback =
      decode_stream_step(6, detail::encode_stream_step_payload(step));
  EXPECT_EQ(sback.stream_id, 42u);
  EXPECT_EQ(sback.request.num_steps, 2u);
  EXPECT_EQ(sback.request.elems_per_step, 3u);
  EXPECT_EQ(sback.request.deadline_us, 1500u);
  ASSERT_EQ(sback.request.data.size(), 6u);
  EXPECT_EQ(std::memcmp(sback.request.data.data(), step.request.data.data(),
                        6 * sizeof(float)),
            0);

  StreamCloseReply reply;
  reply.request_id = 7;
  reply.stream_id = 42;
  reply.steps_done = 9001;
  reply.cumulative_counts = {3.0f, 0.0f, 12.0f};
  const StreamCloseReply rback = decode_stream_close_reply(
      7, detail::encode_stream_close_reply_payload(reply));
  EXPECT_EQ(rback.stream_id, 42u);
  EXPECT_EQ(rback.steps_done, 9001u);
  ASSERT_EQ(rback.cumulative_counts.size(), 3u);
  EXPECT_EQ(std::memcmp(rback.cumulative_counts.data(),
                        reply.cumulative_counts.data(), 3 * sizeof(float)),
            0);

  // Truncated payloads are rejected, not misread.
  auto cut = detail::encode_stream_step_payload(step);
  cut.resize(cut.size() - 1);
  EXPECT_THROW(decode_stream_step(6, cut), InvalidArgument);
  EXPECT_THROW(decode_stream_control(5, {1, 2, 3}), InvalidArgument);
}

TEST(StreamProtocol, StreamingKindsRequireVersion3) {
  // A v3 header with a streaming kind round-trips...
  FrameHeader h;
  h.kind = FrameKind::kStreamStep;
  h.version = 3;
  h.request_id = 1;
  std::uint8_t raw[kHeaderBytes];
  encode_header(h, raw);
  EXPECT_EQ(decode_header(raw).kind, FrameKind::kStreamStep);
  // ...but the same kind on a v2 frame is a malformed peer.
  h.version = 2;
  encode_header(h, raw);
  EXPECT_THROW(decode_header(raw), InvalidArgument);

  // RequestBuilder enforces the same rule at build time.
  RequestBuilder v2(2);
  StreamControl ctl;
  ctl.stream_id = 1;
  EXPECT_THROW(v2.stream_open(ctl), InvalidArgument);
}

TEST(StreamProtocol, BuilderFramesMatchLegacyEncodersByteForByte) {
  // RequestBuilder replaced the four hand-paired encode_header +
  // encode_<payload> call sites; the frames it emits must be the header
  // bytes plus EXACTLY the legacy payload bytes, or old peers break.
  const RequestBuilder b(kProtocolVersion);

  InferRequest req;
  req.request_id = 77;
  req.num_steps = 2;
  req.elems_per_step = 2;
  req.deadline_us = 99;
  req.data = {1.0f, 0.0f, 0.0f, 1.0f};
  InferResponse resp;
  resp.request_id = 77;
  resp.out_features = 2;
  resp.batch = 3;
  resp.spike_counts = {4.0f, 0.0f};
  ErrorResponse err;
  err.request_id = 77;
  err.code = ErrorCode::kOverloaded;
  err.message = "busy";

  struct Case {
    const char* name;
    std::vector<std::uint8_t> frame;
    FrameKind kind;
    std::vector<std::uint8_t> legacy_payload;
  };
  const Case cases[] = {
      {"infer_request", b.infer_request(req), FrameKind::kInferRequest,
       encode_request(req)},
      {"infer_response", b.infer_response(resp), FrameKind::kInferResponse,
       encode_response(resp)},
      {"error", b.error(err), FrameKind::kError, encode_error(err)},
      {"stat_response", b.stat_response(77, "{}"), FrameKind::kStatResponse,
       encode_stat("{}")},
      {"stat_request", b.stat_request(77), FrameKind::kStatRequest, {}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_EQ(c.frame.size(), kHeaderBytes + c.legacy_payload.size());
    const FrameHeader h = decode_header(c.frame.data());
    EXPECT_EQ(h.kind, c.kind);
    EXPECT_EQ(h.version, kProtocolVersion);
    EXPECT_EQ(h.request_id, 77u);
    EXPECT_EQ(h.payload_bytes, c.legacy_payload.size());
    EXPECT_EQ(std::memcmp(c.frame.data() + kHeaderBytes,
                          c.legacy_payload.data(), c.legacy_payload.size()),
              0)
        << "builder payload diverged from the legacy encoder";
  }
}

// --- batcher: same-stream exclusion -----------------------------------------

PendingRequest stream_chunk(std::uint64_t stream_id, std::uint64_t id,
                            std::uint32_t num_steps = 4) {
  PendingRequest p;
  p.request.request_id = id;
  p.request.num_steps = num_steps;
  p.stream_id = stream_id;
  return p;
}

std::vector<PendingRequest> take_batch(Batcher& b) {
  std::vector<PendingRequest> expired;
  std::vector<PendingRequest> batch = b.next_batch(expired);
  EXPECT_TRUE(expired.empty());
  return batch;
}

TEST(StreamBatcher, SameStreamChunksNeverShareABatch) {
  // Stream 5 has two chunks queued; stream 6 and a plain request ride
  // along.  The first batch takes 5's FIRST chunk + 6 + plain (arrival
  // order, skipping 5's second chunk); once the first batch hands its
  // streams back, the next batch carries the held chunk so stream state
  // advances strictly in order.
  Batcher b({.max_batch = 8, .batch_timeout_us = 0, .max_queue_depth = 16});
  ASSERT_EQ(b.submit(stream_chunk(5, 1)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(stream_chunk(5, 2)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(stream_chunk(6, 3)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(stream_chunk(0, 4)), AdmitResult::kAdmitted);

  const auto first = take_batch(b);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].request.request_id, 1u);
  EXPECT_EQ(first[1].request.request_id, 3u);
  EXPECT_EQ(first[2].request.request_id, 4u);

  b.finish_stream(5);
  b.finish_stream(6);
  const auto second = take_batch(b);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].request.request_id, 2u);
  EXPECT_EQ(second[0].stream_id, 5u);
  EXPECT_EQ(b.depth(), 0u);
}

TEST(StreamBatcher, InFlightStreamBlocksItsNextChunkAcrossBatches) {
  // Two pipelined chunks of stream 9: while chunk 1's batch is still in
  // flight (finish_stream not yet called), chunk 2 must be invisible to
  // every next_batch call — otherwise a second worker could win the
  // acquire race and advance the stream out of order.  A plain request
  // proves the batcher still serves everything else meanwhile.
  Batcher b({.max_batch = 8, .batch_timeout_us = 0, .max_queue_depth = 16});
  ASSERT_EQ(b.submit(stream_chunk(9, 1)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(stream_chunk(9, 2)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(stream_chunk(0, 3)), AdmitResult::kAdmitted);

  const auto first = take_batch(b);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].request.request_id, 1u);
  EXPECT_EQ(first[1].request.request_id, 3u);
  EXPECT_EQ(b.depth(), 1u);  // chunk 2 held behind the in-flight stream

  // A second worker arriving now must block, not grab chunk 2: simulate
  // with a thread whose take_batch only completes after finish_stream.
  std::atomic<bool> got{false};
  std::vector<PendingRequest> taken;
  std::thread worker([&] {
    taken = take_batch(b);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.load()) << "chunk 2 handed out while chunk 1 in flight";
  b.finish_stream(9);
  worker.join();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].request.request_id, 2u);
  b.finish_stream(9);
  EXPECT_EQ(b.depth(), 0u);
}

TEST(StreamBatcher, PlainRequestsStillCoalesceFreely) {
  // stream_id == 0 is the plain-request sentinel: many of them share one
  // batch exactly as before the streaming opcodes existed.
  Batcher b({.max_batch = 8, .batch_timeout_us = 0, .max_queue_depth = 16});
  for (std::uint64_t i = 1; i <= 4; ++i)
    ASSERT_EQ(b.submit(stream_chunk(0, i)), AdmitResult::kAdmitted);
  EXPECT_EQ(take_batch(b).size(), 4u);
}

TEST(StreamBatcher, ExclusionComposesWithWindowLengthRule) {
  // A held-back same-stream chunk must not leapfrog via the T-mismatch
  // path either: chunks coalesce only when BOTH rules pass.
  Batcher b({.max_batch = 8, .batch_timeout_us = 0, .max_queue_depth = 16});
  ASSERT_EQ(b.submit(stream_chunk(9, 1, 4)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(stream_chunk(9, 2, 2)), AdmitResult::kAdmitted);

  const auto first = take_batch(b);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].request.request_id, 1u);
  b.finish_stream(9);
  const auto second = take_batch(b);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].request.request_id, 2u);
}

}  // namespace
}  // namespace spiketune::serve
