// Unit tests for core utilities: error macros, RNG, CSV, tables, CLI flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/cli.h"
#include "core/csv.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"

namespace spiketune {
namespace {

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(ST_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(ST_REQUIRE(true, "fine"));
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(ST_ASSERT(false, "bug"), InternalError);
}

TEST(Error, MessageContainsContext) {
  try {
    ST_REQUIRE(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_int(17), 17u);
  EXPECT_THROW(rng.uniform_int(0), InvalidArgument);
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(5);
  std::array<int, 5> hits{};
  for (int i = 0; i < 1000; ++i) ++hits[rng.uniform_int(5)];
  for (int h : hits) EXPECT_GT(h, 100);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 40000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(99);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(123);
  Rng p2(123);
  Rng a = p1.fork(7);
  Rng b = p2.fork(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/spiketune_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row({"1", "2"});
    csv.write_row({"x,y", "he\"llo"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"he\"\"llo\"");
  std::remove(path.c_str());
}

TEST(Csv, DoubleCellUsesShortestRoundTrip) {
  // Shortest decimal string that parses back to the same double — not the
  // old fixed precision-17 dump (0.1 used to render as
  // 0.10000000000000001).
  EXPECT_EQ(CsvWriter::cell(0.1), "0.1");
  EXPECT_EQ(CsvWriter::cell(0.25), "0.25");
  EXPECT_EQ(CsvWriter::cell(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(CsvWriter::cell(-2.5e-7), "-2.5e-07");
  EXPECT_EQ(CsvWriter::cell(0.0), "0");
  const double cases[] = {0.1,   1.0 / 3.0, 6.02214076e23, -1e-300,
                          123.456, 2.0,     1e16,          0.30000000000000004};
  for (double v : cases)
    EXPECT_EQ(std::strtod(CsvWriter::cell(v).c_str(), nullptr), v);
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = ::testing::TempDir() + "/spiketune_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Table, RendersAligned) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name   | value"), std::string::npos);
  EXPECT_NE(s.find("longer | 22"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
}

TEST(Format, Helpers) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.4821, 1), "48.2%");
  EXPECT_EQ(fmt_x(1.7234, 2), "1.72x");
  EXPECT_EQ(fmt_si(12300.0, 1), "12.3k");
  EXPECT_EQ(fmt_si(2.5e6, 1), "2.5M");
  EXPECT_EQ(fmt_si(5.0, 1), "5.0");
}

TEST(Cli, ParsesForms) {
  CliFlags flags;
  flags.declare("alpha", "1.0", "a number");
  flags.declare("name", "x", "a string");
  flags.declare("fast", "false", "a bool");
  const char* argv[] = {"--alpha=2.5", "--name", "svhn", "--fast"};
  flags.parse(4, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 2.5);
  EXPECT_EQ(flags.get("name"), "svhn");
  EXPECT_TRUE(flags.get_bool("fast"));
}

TEST(Cli, DefaultsHold) {
  CliFlags flags;
  flags.declare("n", "42", "int");
  flags.parse(0, nullptr);
  EXPECT_EQ(flags.get_int("n"), 42);
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags flags;
  flags.declare("n", "1", "int");
  const char* argv[] = {"--bogus=3"};
  EXPECT_THROW(flags.parse(1, argv), InvalidArgument);
}

TEST(Cli, HelpRequested) {
  CliFlags flags;
  flags.declare("n", "1", "int");
  const char* argv[] = {"--help"};
  flags.parse(1, argv);
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.usage("prog").find("--n"), std::string::npos);
}

TEST(Cli, BadNumberThrows) {
  CliFlags flags;
  flags.declare("n", "1", "int");
  const char* argv[] = {"--n=abc"};
  flags.parse(1, argv);
  EXPECT_THROW(flags.get_int("n"), InvalidArgument);
}

TEST(Stats, PercentileSortedNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  // Nearest-rank on 1..100: p-th percentile is exactly the p-th value.
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.90), 90.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 100.0);
  // Out-of-range q clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(percentile_sorted(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 2.0), 100.0);
}

TEST(Stats, PercentileSortedSmallVectors) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);  // empty: defined 0
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.999), 7.0);
  const std::vector<double> two = {1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(two, 0.5), 1.0);  // rank ceil(1.0) = 1
  EXPECT_DOUBLE_EQ(percentile_sorted(two, 0.51), 9.0);
}

TEST(Stats, SummarizeLatenciesSortsAndSummarizes) {
  std::vector<double> samples = {5.0, 1.0, 4.0, 2.0, 3.0};
  const LatencyStats s = summarize_latencies(samples);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.p999, 5.0);
  EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end()));

  std::vector<double> empty;
  const LatencyStats z = summarize_latencies(empty);
  EXPECT_EQ(z.count, 0);
  EXPECT_DOUBLE_EQ(z.mean, 0.0);
  EXPECT_DOUBLE_EQ(z.p999, 0.0);
}

}  // namespace
}  // namespace spiketune
