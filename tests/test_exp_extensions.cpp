// End-to-end coverage of the extended experiment paths: the SynthDigits
// task, the count-MSE loss, and configuration validation.
#include <gtest/gtest.h>

#include "core/error.h"
#include "exp/experiment.h"

namespace spiketune::exp {
namespace {

ExperimentConfig digits_config() {
  auto cfg = ExperimentConfig::for_profile(Profile::kSmoke);
  cfg.dataset = "digits";
  cfg.model.in_channels = 1;
  cfg.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  return cfg;
}

TEST(ExpExtensions, DigitsDatasetRunsEndToEnd) {
  const auto r = run_experiment(digits_config());
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GT(r.latency_us, 0.0);
  EXPECT_EQ(r.mapping.workloads.size(), 4u);
  // 1-channel input halves conv1's per-spike fan-in footprint: the
  // workload must reflect the smaller input plane.
  EXPECT_EQ(r.mapping.workloads[0].input_size, 1 * 12 * 12);
}

TEST(ExpExtensions, DigitsIsEasierThanSvhn) {
  // Same budget, same topology width: the clean grayscale task should
  // train at least as well as the cluttered colour one.
  auto digits = digits_config();
  digits.trainer.epochs = 10;
  auto svhn = ExperimentConfig::for_profile(Profile::kSmoke);
  svhn.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  svhn.trainer.epochs = 10;
  const auto rd = run_experiment(digits);
  const auto rs = run_experiment(svhn);
  EXPECT_GE(rd.final_train_accuracy, rs.final_train_accuracy - 0.05);
}

TEST(ExpExtensions, DatasetChannelMismatchThrows) {
  auto cfg = digits_config();
  cfg.model.in_channels = 3;  // digits is 1-channel
  EXPECT_THROW(run_experiment(cfg), InvalidArgument);
  auto svhn = ExperimentConfig::for_profile(Profile::kSmoke);
  svhn.model.in_channels = 1;  // svhn is 3-channel
  EXPECT_THROW(run_experiment(svhn), InvalidArgument);
}

TEST(ExpExtensions, UnknownDatasetOrLossThrows) {
  auto cfg = ExperimentConfig::for_profile(Profile::kSmoke);
  cfg.dataset = "imagenet";
  EXPECT_THROW(run_experiment(cfg), InvalidArgument);
  cfg = ExperimentConfig::for_profile(Profile::kSmoke);
  cfg.loss = "hinge";
  EXPECT_THROW(run_experiment(cfg), InvalidArgument);
}

TEST(ExpExtensions, CountMseLossRunsEndToEnd) {
  auto cfg = ExperimentConfig::for_profile(Profile::kSmoke);
  cfg.loss = "count_mse";
  cfg.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.firing_rate, 0.0);
  EXPECT_GT(r.fps_per_watt, 0.0);
}

TEST(ExpExtensions, LossChoiceChangesTraining) {
  auto ce = ExperimentConfig::for_profile(Profile::kSmoke);
  ce.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  auto mse = ce;
  mse.loss = "count_mse";
  const auto r_ce = run_experiment(ce);
  const auto r_mse = run_experiment(mse);
  // Identical everything except the loss: trained models must differ in
  // their activity statistics.
  EXPECT_NE(r_ce.firing_rate, r_mse.firing_rate);
}

TEST(ExpExtensions, RateEncodingPathRunsEndToEnd) {
  auto cfg = ExperimentConfig::for_profile(Profile::kSmoke);
  cfg.encoder = "rate";
  cfg.normalize = false;  // rate coding needs [0,1] intensities
  cfg.model.init_gain = 2.5f;
  const auto r = run_experiment(cfg);
  // With binary input spikes conv1's input is genuinely sparse.
  EXPECT_LT(r.mapping.workloads[0].input_density(), 0.95);
  EXPECT_GT(r.mapping.workloads[0].input_density(), 0.05);
}

}  // namespace
}  // namespace spiketune::exp
