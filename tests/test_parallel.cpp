// Determinism suite for the thread pool and the threaded kernels, plus
// regression tests for the evaluation-stream and uniform_int fixes.
//
// The central claim under test: for ANY thread count, every threaded kernel
// produces bit-identical results to the serial path (core/parallel.h's
// determinism contract).  Sizes are deliberately odd/ragged so slice
// boundaries never align with the kernels' internal block sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "data/dataloader.h"
#include "data/encoders.h"
#include "snn/conv2d.h"
#include "snn/lif.h"
#include "snn/linear.h"
#include "snn/loss.h"
#include "snn/network.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "train/trainer.h"

namespace spiketune {
namespace {

// Restores the serial default even if a test fails mid-way.
class ThreadGuard {
 public:
  ~ThreadGuard() { set_num_threads(1); }
};

std::vector<float> random_vec(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceOnRaggedRanges) {
  ThreadGuard guard;
  const struct {
    std::int64_t begin, end, grain;
  } cases[] = {{0, 1, 1},   {0, 7, 3},    {3, 101, 7},
               {0, 1000, 64}, {5, 6, 100}, {0, 17, 1}};
  for (int threads : {1, 2, 5, 11}) {
    set_num_threads(threads);
    for (const auto& c : cases) {
      const auto n = static_cast<std::size_t>(c.end - c.begin);
      std::vector<std::atomic<int>> hits(n);
      parallel_for(c.begin, c.end, c.grain,
                   [&](std::int64_t b, std::int64_t e) {
                     ASSERT_LE(c.begin, b);
                     ASSERT_LE(b, e);
                     ASSERT_LE(e, c.end);
                     for (std::int64_t i = b; i < e; ++i)
                       hits[static_cast<std::size_t>(i - c.begin)]
                           .fetch_add(1);
                   });
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " of [" << c.begin << ", " << c.end
            << ") grain " << c.grain << " threads " << threads;
    }
  }
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  ThreadGuard guard;
  set_num_threads(3);
  bool called = false;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SlicesRespectGrainAndAreContiguous) {
  ThreadGuard guard;
  set_num_threads(4);
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> slices;
  parallel_for(0, 103, 10, [&](std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    slices.emplace_back(b, e);
  });
  std::sort(slices.begin(), slices.end());
  std::int64_t cursor = 0;
  for (std::size_t s = 0; s < slices.size(); ++s) {
    EXPECT_EQ(slices[s].first, cursor);
    // Every slice except the last holds a whole number of grain units.
    if (s + 1 < slices.size()) {
      EXPECT_EQ((slices[s].second - slices[s].first) % 10, 0);
    }
    cursor = slices[s].second;
  }
  EXPECT_EQ(cursor, 103);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      parallel_for(0, 10, 1, [&](std::int64_t ib, std::int64_t ie) {
        total.fetch_add(ie - ib);
      });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelFor, PropagatesExceptionsFromSlices) {
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::int64_t b, std::int64_t) {
                     if (b >= 0) throw InvalidArgument("slice boom");
                   }),
      InvalidArgument);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  parallel_for(0, 10, 1,
               [&](std::int64_t b, std::int64_t e) {
                 count.fetch_add(static_cast<int>(e - b));
               });
  EXPECT_EQ(count.load(), 10);
}

// --- Threaded kernels are bit-identical to serial -------------------------

TEST(ThreadedKernels, GemmBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::int64_t m = 37, n = 53, k = 29;
  Rng rng(11);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);

  set_num_threads(1);
  auto serial = c0;
  gemm(m, n, k, 1.3f, a.data(), b.data(), 0.7f, serial.data());

  for (int threads : {2, 5}) {
    set_num_threads(threads);
    auto c = c0;
    gemm(m, n, k, 1.3f, a.data(), b.data(), 0.7f, c.data());
    EXPECT_TRUE(bit_equal(serial, c)) << "threads=" << threads;
  }
}

TEST(ThreadedKernels, GemmTnBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::int64_t m = 41, n = 23, k = 67;
  Rng rng(12);
  const auto a = random_vec(k * m, rng);  // A is [k, m]
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);

  set_num_threads(1);
  auto serial = c0;
  gemm_tn(m, n, k, 0.9f, a.data(), b.data(), 1.0f, serial.data());

  for (int threads : {2, 5}) {
    set_num_threads(threads);
    auto c = c0;
    gemm_tn(m, n, k, 0.9f, a.data(), b.data(), 1.0f, c.data());
    EXPECT_TRUE(bit_equal(serial, c)) << "threads=" << threads;
  }
}

TEST(ThreadedKernels, GemmNtBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::int64_t m = 31, n = 71, k = 45;
  Rng rng(13);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(n * k, rng);  // B is [n, k]
  const auto c0 = random_vec(m * n, rng);

  set_num_threads(1);
  auto serial = c0;
  gemm_nt(m, n, k, 1.0f, a.data(), b.data(), 1.0f, serial.data());

  for (int threads : {2, 5}) {
    set_num_threads(threads);
    auto c = c0;
    gemm_nt(m, n, k, 1.0f, a.data(), b.data(), 1.0f, c.data());
    EXPECT_TRUE(bit_equal(serial, c)) << "threads=" << threads;
  }
}

TEST(ThreadedKernels, Im2colCol2imBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const ConvGeom g{5, 13, 11, 3, 3, 1, 1, 1, 1};  // odd sizes, padded
  Rng rng(14);
  const auto img = random_vec(g.channels * g.height * g.width, rng);
  const auto cols_in = random_vec(g.col_rows() * g.col_cols(), rng);

  set_num_threads(1);
  std::vector<float> cols_serial(
      static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), cols_serial.data());
  std::vector<float> img_serial(
      static_cast<std::size_t>(g.channels * g.height * g.width), 0.0f);
  col2im(g, cols_in.data(), img_serial.data());

  for (int threads : {2, 5}) {
    set_num_threads(threads);
    std::vector<float> cols(cols_serial.size());
    im2col(g, img.data(), cols.data());
    EXPECT_TRUE(bit_equal(cols_serial, cols)) << "threads=" << threads;
    std::vector<float> img_out(img_serial.size(), 0.0f);
    col2im(g, cols_in.data(), img_out.data());
    EXPECT_TRUE(bit_equal(img_serial, img_out)) << "threads=" << threads;
  }
}

struct ConvRun {
  Tensor output;
  Tensor grad_input;
  Tensor weight_grad;
  Tensor bias_grad;
};

ConvRun run_conv(int threads) {
  set_num_threads(threads);
  Rng rng(15);
  snn::Conv2d conv(snn::Conv2dConfig{3, 7, 3, 1}, rng);
  Tensor x = Tensor::uniform(Shape{5, 3, 9, 11}, rng, -1.0f, 1.0f);
  Tensor go = Tensor::uniform(Shape{5, 7, 9, 11}, rng, -1.0f, 1.0f);
  conv.begin_window(5, true);
  ConvRun r;
  r.output = conv.forward_step(x);
  r.grad_input = conv.backward_step(go);
  r.weight_grad = conv.weight().grad;
  r.bias_grad = conv.bias().grad;
  return r;
}

TEST(ThreadedKernels, ConvForwardBackwardBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const ConvRun serial = run_conv(1);
  for (int threads : {2, 5}) {
    const ConvRun t = run_conv(threads);
    EXPECT_TRUE(bit_equal(serial.output, t.output)) << "threads=" << threads;
    EXPECT_TRUE(bit_equal(serial.grad_input, t.grad_input))
        << "threads=" << threads;
    EXPECT_TRUE(bit_equal(serial.weight_grad, t.weight_grad))
        << "threads=" << threads;
    EXPECT_TRUE(bit_equal(serial.bias_grad, t.bias_grad))
        << "threads=" << threads;
  }
}

struct LifRun {
  std::vector<Tensor> spikes;
  std::vector<Tensor> grads;
  std::int64_t spike_count = 0;
};

LifRun run_lif(int threads) {
  set_num_threads(threads);
  snn::LifConfig cfg;
  cfg.beta = 0.5f;
  cfg.threshold = 0.9f;
  snn::Lif lif(cfg);
  Rng rng(16);
  const std::int64_t steps = 4;
  std::vector<Tensor> inputs;
  std::vector<Tensor> gos;
  for (std::int64_t t = 0; t < steps; ++t) {
    inputs.push_back(Tensor::uniform(Shape{3, 2467}, rng, 0.0f, 2.0f));
    gos.push_back(Tensor::uniform(Shape{3, 2467}, rng, -1.0f, 1.0f));
  }
  LifRun r;
  lif.begin_window(3, true);
  for (const auto& x : inputs) r.spikes.push_back(lif.forward_step(x));
  lif.begin_backward();
  for (std::int64_t t = steps - 1; t >= 0; --t)
    r.grads.push_back(
        lif.backward_step(gos[static_cast<std::size_t>(t)]));
  r.spike_count = lif.window_spike_count();
  return r;
}

TEST(ThreadedKernels, LifForwardBackwardBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const LifRun serial = run_lif(1);
  EXPECT_GT(serial.spike_count, 0);
  for (int threads : {2, 5}) {
    const LifRun t = run_lif(threads);
    EXPECT_EQ(serial.spike_count, t.spike_count) << "threads=" << threads;
    ASSERT_EQ(serial.spikes.size(), t.spikes.size());
    for (std::size_t s = 0; s < serial.spikes.size(); ++s) {
      EXPECT_TRUE(bit_equal(serial.spikes[s], t.spikes[s]))
          << "step " << s << " threads=" << threads;
      EXPECT_TRUE(bit_equal(serial.grads[s], t.grads[s]))
          << "step " << s << " threads=" << threads;
    }
  }
}

// --- Regression: evaluation streams --------------------------------------

TEST(EvalStream, NamespacedAwayFromTrainingAndDistinctPerCall) {
  // Every evaluation stream carries the high-bit tag, so it can never
  // equal a training stream (a plain batch ordinal).
  EXPECT_NE(train::Trainer::eval_stream(0, 0) >> 63, 0u);
  std::set<std::uint64_t> seen;
  for (std::uint64_t call = 0; call < 8; ++call)
    for (std::uint64_t batch = 0; batch < 64; ++batch) {
      const std::uint64_t s = train::Trainer::eval_stream(call, batch);
      EXPECT_NE(s >> 63, 0u);
      EXPECT_TRUE(seen.insert(s).second)
          << "duplicate stream for call " << call << " batch " << batch;
    }
  // Regression: the old code reused 0xe5a1 + batch for every call.
  EXPECT_NE(train::Trainer::eval_stream(0, 0), 0xe5a1ULL);
  EXPECT_NE(train::Trainer::eval_stream(1, 0),
            train::Trainer::eval_stream(0, 0));
}

class StripeDataset final : public data::Dataset {
 public:
  std::int64_t size() const override { return 16; }
  int num_classes() const override { return 2; }
  Shape image_shape() const override { return Shape{1, 4, 4}; }
  data::Example get(std::int64_t i) const override {
    data::Example ex;
    ex.label = static_cast<int>(i % 2);
    ex.image = Tensor(Shape{1, 4, 4});
    Rng rng = Rng(4242).fork(static_cast<std::uint64_t>(i));
    for (std::int64_t p = 0; p < 16; ++p)
      ex.image[p] = static_cast<float>(rng.uniform(0.2, 0.9));
    return ex;
  }
};

struct EvalPair {
  train::EvalMetrics first;
  train::EvalMetrics second;
};

EvalPair evaluate_twice() {
  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(StripeDataset()));
  data::DataLoader loader(ds, 8, false);
  data::RateEncoder encoder(77);
  snn::RateCrossEntropyLoss loss(4.0);
  auto net = std::make_unique<snn::SpikingNetwork>();
  net->add<snn::Flatten>();
  Rng rng(21);
  net->add<snn::Linear>(snn::LinearConfig{16, 8}, rng);
  net->add<snn::Lif>(snn::LifConfig{});
  train::TrainerConfig tcfg;
  tcfg.num_steps = 6;
  tcfg.batch_size = 8;
  tcfg.verbose = false;
  train::Trainer trainer(*net, encoder, loss, tcfg);
  EvalPair p;
  p.first = trainer.evaluate(loader);
  p.second = trainer.evaluate(loader);
  return p;
}

// Spikes the rate encoder fed into the network (layer 0's input): the
// direct observable of which encoder streams evaluate() used.
std::int64_t encoded_spikes(const snn::SpikeRecord& record) {
  return record.layers().front().input_nonzeros;
}

TEST(EvalStream, RepeatedEvaluationsUseFreshNoiseButStayReproducible) {
  const EvalPair a = evaluate_twice();
  const EvalPair b = evaluate_twice();
  // Reproducible: the k-th evaluate() of identical trainers matches.
  EXPECT_EQ(a.first.loss, b.first.loss);
  EXPECT_EQ(a.second.loss, b.second.loss);
  EXPECT_EQ(encoded_spikes(a.first.record), encoded_spikes(b.first.record));
  EXPECT_EQ(encoded_spikes(a.second.record),
            encoded_spikes(b.second.record));
  // Fresh noise: the second call does not replay the first call's
  // rate-coding draws (the old hard-coded 0xe5a1 stream did).
  EXPECT_NE(encoded_spikes(a.first.record), encoded_spikes(a.second.record));
}

// --- Regression: Lemire uniform_int ---------------------------------------

TEST(UniformInt, PowerOfTwoRangeTakesHighBits) {
  // For n = 2^k the multiply-shift map reduces to the top k bits of the
  // raw draw (and never rejects) — a direct check that the implementation
  // is Lemire's multiply-shift rather than masking or modulo.
  Rng rng(31);
  Rng twin(31);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(rng.uniform_int(256), twin.next_u64() >> 56);
}

TEST(UniformInt, BoundsHoldAcrossRangeSizes) {
  Rng rng(32);
  const std::uint64_t ns[] = {1,   2,          3,
                              10,  255,        1ULL << 32,
                              (1ULL << 63) + 5, ~0ULL};
  for (const std::uint64_t n : ns)
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_int(n), n);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(UniformInt, RoughlyUniformOverSmallRange) {
  Rng rng(33);
  int hits[10] = {};
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++hits[rng.uniform_int(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_GT(hits[b], draws / 10 - 400) << "bucket " << b;
    EXPECT_LT(hits[b], draws / 10 + 400) << "bucket " << b;
  }
}

TEST(UniformInt, MatchesMultiplyShiftReference) {
  // Reference: Lemire 2019, "Fast Random Integer Generation in an
  // Interval", Algorithm 5 — driven by a twin generator so both sides see
  // the same raw 64-bit stream, including rejection-heavy n.
  Rng rng(34);
  Rng twin(34);
  const std::uint64_t ns[] = {3, 10, 1000, (1ULL << 63) + 5};
  for (const std::uint64_t n : ns) {
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t got = rng.uniform_int(n);
      unsigned __int128 m = static_cast<unsigned __int128>(twin.next_u64()) * n;
      auto lo = static_cast<std::uint64_t>(m);
      if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
          m = static_cast<unsigned __int128>(twin.next_u64()) * n;
          lo = static_cast<std::uint64_t>(m);
        }
      }
      EXPECT_EQ(got, static_cast<std::uint64_t>(m >> 64)) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace spiketune
