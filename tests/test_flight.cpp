// Flight-recorder and crash-forensics tests: ring rollover exactness,
// concurrent-writer isolation, dump/decode round-trips, the crash-at fault
// grammar, and fork-based end-to-end crashes (SIGSEGV / SIGABRT, and a
// serve daemon killed mid-burst by deterministic fault injection) that
// assert the bundle exists, decodes, and its last events match what the
// client side observed.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "infer/session.h"
#include "obs/crash.h"
#include "obs/flight.h"
#include "serve/fault.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "snn/model_zoo.h"

// Fork-based crash tests do not mix with ThreadSanitizer: the child
// inherits TSan's runtime mid-crash and the induced signal trips the
// sanitizer before the handler we are testing.  Skip them there.
#if defined(__SANITIZE_THREAD__)
#define SPIKETUNE_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPIKETUNE_TSAN_BUILD 1
#endif
#endif

namespace spiketune::obs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

using FE = FlightEventId;

// --- ring semantics ---------------------------------------------------------

TEST(Flight, DisarmedGateRecordsNothing) {
  disarm_flight_recorder();
  const std::int64_t before = flight_stats().recorded;
  flight_record(FE::kFrameDecode, 1, 2);
  flight_record(FE::kConnAccept, 3, 4);
  EXPECT_FALSE(flight_enabled());
  EXPECT_EQ(flight_stats().recorded, before);
}

TEST(Flight, CapacityRoundsUpToPowerOfTwoFloor64) {
  arm_flight_recorder({.events_per_thread = 10, .max_threads = 2});
  EXPECT_TRUE(flight_enabled());
  EXPECT_EQ(flight_stats().capacity_per_thread, 64);
  arm_flight_recorder({.events_per_thread = 100, .max_threads = 2});
  EXPECT_EQ(flight_stats().capacity_per_thread, 128);
  disarm_flight_recorder();
}

TEST(Flight, RolloverKeepsExactlyTheTrailingWindow) {
  arm_flight_recorder({.events_per_thread = 64, .max_threads = 4});
  for (std::uint64_t i = 0; i < 100; ++i)
    flight_record(FE::kFrameDecode, i, i * 2);
  const FlightStats stats = flight_stats();
  EXPECT_EQ(stats.recorded, 100);
  EXPECT_EQ(stats.retained, 64);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.threads, 1);

  const DecodedFlightDump dump = snapshot_flight_events();
  ASSERT_EQ(dump.events.size(), 64u);
  EXPECT_EQ(dump.torn, 0);
  // Exactness: the survivors are precisely writes 36..99, in order, with
  // their per-thread sequence numbers intact (seq gaps reveal rollover).
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const DecodedFlightEvent& e = dump.events[i];
    EXPECT_EQ(e.seq, 36 + i);
    EXPECT_EQ(e.a0, 36 + i);
    EXPECT_EQ(e.a1, (36 + i) * 2);
    EXPECT_EQ(e.name, std::string("serve.frame_decode"));
  }
  disarm_flight_recorder();
}

TEST(Flight, ConcurrentWritersNeverTearOrCrossRings) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  constexpr std::uint32_t kCap = 4096;
  arm_flight_recorder({.events_per_thread = kCap, .max_threads = 16});
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        flight_record(FE::kRequestAdmit, i, i ^ 0xabcdULL);
    });
  }
  for (std::thread& w : writers) w.join();

  const FlightStats stats = flight_stats();
  EXPECT_EQ(stats.recorded, kThreads * static_cast<std::int64_t>(kPerThread));
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.threads, kThreads);
  EXPECT_EQ(stats.retained, kThreads * static_cast<std::int64_t>(kCap));

  // Per thread: exactly the trailing kCap writes survived, and each
  // record's payload matches its own sequence number — a torn or
  // cross-ring write would break the a0 == seq invariant somewhere.
  const DecodedFlightDump dump = snapshot_flight_events();
  EXPECT_EQ(dump.torn, 0);
  std::vector<std::uint64_t> next(kThreads, kPerThread - kCap);
  std::vector<std::int64_t> count(kThreads, 0);
  for (const DecodedFlightEvent& e : dump.events) {
    ASSERT_LT(e.thread, kThreads);
    EXPECT_EQ(e.a0, e.seq);
    EXPECT_EQ(e.a1, e.seq ^ 0xabcdULL);
    ++count[static_cast<std::size_t>(e.thread)];
  }
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(count[static_cast<std::size_t>(t)],
              static_cast<std::int64_t>(kCap));
  disarm_flight_recorder();
}

TEST(Flight, SlotExhaustionCountsDrops) {
  arm_flight_recorder({.events_per_thread = 64, .max_threads = 1});
  std::thread first([] {
    for (int i = 0; i < 5; ++i) flight_record(FE::kConnAccept, 1);
  });
  first.join();
  std::thread second([] {
    for (int i = 0; i < 3; ++i) flight_record(FE::kConnClose, 2);
  });
  second.join();
  const FlightStats stats = flight_stats();
  EXPECT_EQ(stats.threads, 1);
  EXPECT_EQ(stats.recorded, 5);
  EXPECT_EQ(stats.dropped, 3);
  disarm_flight_recorder();
}

// --- dump / decode ----------------------------------------------------------

TEST(Flight, DumpDecodesBackToTheSnapshot) {
  arm_flight_recorder({.events_per_thread = 64, .max_threads = 4});
  flight_record(FE::kBatchAssemble, 4, 8);
  flight_record(FE::kBatchDispatch, 4);
  flight_record(FE::kDeadlineShed, 77, 5000);
  const DecodedFlightDump live = snapshot_flight_events();

  const std::string path = tmp_path("flight_roundtrip.bin");
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(dump_flight_rings(fd));
  ::close(fd);

  const DecodedFlightDump back = decode_flight_dump(path);
  ASSERT_EQ(back.events.size(), live.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(back.events[i].ts_ns, live.events[i].ts_ns);
    EXPECT_EQ(back.events[i].thread, live.events[i].thread);
    EXPECT_EQ(back.events[i].id, live.events[i].id);
    EXPECT_EQ(back.events[i].name, live.events[i].name);
    EXPECT_EQ(back.events[i].a0, live.events[i].a0);
    EXPECT_EQ(back.events[i].a1, live.events[i].a1);
    EXPECT_EQ(back.events[i].seq, live.events[i].seq);
  }
  EXPECT_EQ(back.capacity_per_thread, 64u);
  disarm_flight_recorder();
}

TEST(Flight, DecodeRejectsGarbage) {
  const std::string path = tmp_path("flight_garbage.bin");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "this is not a flight dump at all";
  out.close();
  EXPECT_THROW(decode_flight_dump(path), InvalidArgument);
  EXPECT_THROW(decode_flight_dump(tmp_path("no_such_dump.bin")), Error);
}

// --- crash-at fault grammar -------------------------------------------------

TEST(FlightFaultSpec, CrashAtParsesAndDescribes) {
  const serve::FaultSpec spec =
      serve::FaultSpec::parse("crash_at=25,crash_sig=6,seed=7");
  EXPECT_EQ(spec.crash_at, 25);
  EXPECT_EQ(spec.crash_sig, 6);
  EXPECT_TRUE(spec.enabled());
  const std::string text = spec.describe();
  EXPECT_NE(text.find("crash_at=25"), std::string::npos);
  EXPECT_NE(text.find("crash_sig=6"), std::string::npos);
  // Round-trip through describe(), and the dashed aliases.
  EXPECT_EQ(serve::FaultSpec::parse(text).crash_at, 25);
  EXPECT_EQ(serve::FaultSpec::parse("crash-at=3,crash-sig=11").crash_at, 3);
  EXPECT_FALSE(serve::FaultSpec::parse("crash_at=0").enabled());
}

TEST(FlightFaultSpec, CrashAtRejectsBadValues) {
  EXPECT_THROW(serve::FaultSpec::parse("crash_at=-1"), InvalidArgument);
  EXPECT_THROW(serve::FaultSpec::parse("crash_at=x"), InvalidArgument);
  EXPECT_THROW(serve::FaultSpec::parse("crash_sig=9"), InvalidArgument);
  EXPECT_THROW(serve::FaultSpec::parse("crash_sig=15"), InvalidArgument);
}

// --- crash.meta parsing -----------------------------------------------------

TEST(Crash, FnvFingerprintIsStable) {
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("spiketune"), fnv1a64("spiketune"));
}

// --- fork-based end-to-end crashes ------------------------------------------

#ifndef SPIKETUNE_TSAN_BUILD

// Induces `signo` in a forked child after recording `marker_count` known
// events, then asserts the bundle in `dir` exists and decodes to a history
// whose tail is exactly those markers followed by the kCrashSignal stamp.
void run_induced_crash(int signo, const std::string& dir,
                       std::uint64_t marker_count) {
  std::filesystem::remove_all(dir);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    arm_flight_recorder({.events_per_thread = 256, .max_threads = 8});
    CrashHandlerConfig cc;
    cc.bundle_dir = dir;
    cc.fingerprint_text =
        "build: gtest-harness\nfingerprint: 00000000deadbeef\n";
    cc.refresh_period_ms = 0;  // no refresher thread across fork
    try {
      install_crash_handler(cc);
    } catch (const Error&) {
      _exit(90);
    }
    refresh_crash_snapshots();
    for (std::uint64_t i = 0; i < marker_count; ++i)
      flight_record(FE::kFrameDecode, i, 0x5eedULL);
    if (signo == SIGABRT) {
      std::abort();
    } else {
      volatile int* null_page = nullptr;
      *null_page = 42;
    }
    _exit(91);  // unreachable: the signal must be fatal
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << status;
  EXPECT_EQ(WTERMSIG(status), signo);

  ASSERT_TRUE(crash_bundle_present(dir));
  const CrashMeta meta = parse_crash_meta(dir + "/crash.meta");
  EXPECT_EQ(meta.signal, signo);
  EXPECT_EQ(meta.signame, signo == SIGSEGV ? "SIGSEGV" : "SIGABRT");
  EXPECT_NE(meta.fingerprint_text.find("build: gtest-harness"),
            std::string::npos);
  EXPECT_FALSE(meta.backtrace.empty());

  const DecodedFlightDump dump = decode_flight_dump(dir + "/flight.bin");
  ASSERT_GE(dump.events.size(), marker_count + 1);
  // The tail is the recorded markers in order, then the handler's own
  // kCrashSignal stamp — the last thing the process ever wrote.
  const DecodedFlightEvent& last = dump.events.back();
  EXPECT_EQ(last.id, static_cast<std::uint16_t>(FE::kCrashSignal));
  EXPECT_EQ(last.a0, static_cast<std::uint64_t>(signo));
  for (std::uint64_t i = 0; i < marker_count; ++i) {
    const DecodedFlightEvent& e =
        dump.events[dump.events.size() - 1 - marker_count + i];
    EXPECT_EQ(e.id, static_cast<std::uint16_t>(FE::kFrameDecode));
    EXPECT_EQ(e.a0, i);
    EXPECT_EQ(e.a1, 0x5eedULL);
  }
  // The pre-serialized snapshots were dumped too (possibly empty, but the
  // files must exist: the handler writes whatever the last refresh held).
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/extra.jsonl"));
}

TEST(CrashFork, SigsegvProducesDecodableBundle) {
  run_induced_crash(SIGSEGV, tmp_path("crash_segv"), 11);
}

TEST(CrashFork, SigabrtProducesDecodableBundle) {
  run_induced_crash(SIGABRT, tmp_path("crash_abrt"), 7);
}

// The whole pipeline under load: a daemon with `crash_at=20` dies on its
// 20th inbound frame mid-burst; the bundle's flight timeline must agree
// with what the surviving client observed.
TEST(CrashFork, ServeCrashAtMidBurstBundleMatchesClient) {
  const std::string dir = tmp_path("crash_serve");
  std::filesystem::remove_all(dir);
  constexpr std::int64_t kCrashAt = 20;

  int ready[2];
  ASSERT_EQ(pipe(ready), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(ready[0]);
    arm_flight_recorder({.events_per_thread = 4096, .max_threads = 32});
    CrashHandlerConfig cc;
    cc.bundle_dir = dir;
    cc.fingerprint_text = "build: gtest-serve\n";
    cc.refresh_period_ms = 0;
    try {
      install_crash_handler(cc);
    } catch (const Error&) {
      _exit(90);
    }
    refresh_crash_snapshots();
    const auto net = snn::make_snn_mlp({});
    const Shape per_sample{snn::MlpConfig{}.in_features};
    const auto model = infer::CompiledModel::compile(*net, per_sample);
    serve::ServerConfig cfg;
    cfg.port = 0;
    cfg.num_workers = 1;
    cfg.max_batch = 4;
    cfg.batch_timeout_us = 0;
    cfg.fault_spec = "crash_at=" + std::to_string(kCrashAt) + ",seed=7";
    serve::Server server(model, cfg);
    server.start();
    const std::uint32_t port = static_cast<std::uint32_t>(server.port());
    if (write(ready[1], &port, sizeof port) != sizeof port) _exit(92);
    // The crash arrives on a reader thread; just stay alive until it does.
    for (;;) pause();
  }
  close(ready[1]);
  std::uint32_t port = 0;
  ASSERT_EQ(read(ready[0], &port, sizeof port),
            static_cast<ssize_t>(sizeof port));
  close(ready[0]);

  const std::int64_t elems = Shape{snn::MlpConfig{}.in_features}.numel();
  std::int64_t completed = 0;
  {
    serve::TcpClient client("127.0.0.1", static_cast<int>(port), 4000);
    Rng rng(99);
    for (int i = 0; i < 100; ++i) {
      serve::InferRequest req;
      req.request_id = static_cast<std::uint64_t>(i + 1);
      req.num_steps = 4;
      req.elems_per_step = static_cast<std::uint32_t>(elems);
      req.data.resize(4 * static_cast<std::size_t>(elems));
      for (float& v : req.data) v = rng.uniform() < 0.2 ? 1.0f : 0.0f;
      const serve::TcpClient::Reply reply = client.roundtrip(req);
      if (reply.disconnected) break;
      if (reply.ok) ++completed;
    }
  }
  // Frames 1..19 complete, frame 20 kills the daemon mid-read.
  EXPECT_EQ(completed, kCrashAt - 1);

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "daemon exited " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  ASSERT_TRUE(crash_bundle_present(dir));
  EXPECT_EQ(parse_crash_meta(dir + "/crash.meta").signal, SIGSEGV);
  const DecodedFlightDump dump = decode_flight_dump(dir + "/flight.bin");
  std::int64_t responses_ok = 0, crash_injected = 0, crash_signal = 0;
  for (const DecodedFlightEvent& e : dump.events) {
    if (e.id == static_cast<std::uint16_t>(FE::kResponseSent) && e.a1 == 1)
      ++responses_ok;
    if (e.id == static_cast<std::uint16_t>(FE::kCrashInjected)) {
      ++crash_injected;
      EXPECT_EQ(e.a0, static_cast<std::uint64_t>(kCrashAt));
    }
    if (e.id == static_cast<std::uint16_t>(FE::kCrashSignal)) ++crash_signal;
  }
  // Mutual consistency: the black box saw the responses the client got
  // (the final one may lose the race between the worker's write_frame
  // returning and the handler freezing the recorder), exactly one injected
  // crash, and the handler's own signal stamp.
  EXPECT_GE(responses_ok, completed - 1);
  EXPECT_LE(responses_ok, completed);
  EXPECT_EQ(crash_injected, 1);
  EXPECT_EQ(crash_signal, 1);
}

#endif  // !SPIKETUNE_TSAN_BUILD

}  // namespace
}  // namespace spiketune::obs
