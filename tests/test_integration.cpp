// Integration tests: the full pipeline at smoke scale, and the paper's
// qualitative claims as testable properties (sparsity responds to theta and
// beta; event-driven hardware rewards sparsity end to end).
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/sweep.h"

namespace spiketune::exp {
namespace {

ExperimentConfig smoke_config() {
  auto cfg = ExperimentConfig::for_profile(Profile::kSmoke);
  cfg.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  return cfg;
}

TEST(Integration, SmokeExperimentRuns) {
  const auto r = run_experiment(smoke_config());
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GT(r.firing_rate, 0.0);
  EXPECT_LT(r.firing_rate, 1.0);
  EXPECT_GT(r.latency_us, 0.0);
  EXPECT_GT(r.throughput_fps, 0.0);
  EXPECT_GT(r.watts, 0.0);
  EXPECT_NEAR(r.fps_per_watt, r.throughput_fps / r.watts, 1e-6);
  EXPECT_EQ(r.mapping.workloads.size(), 4u);  // conv1 conv2 fc1 fc2
  EXPECT_EQ(r.mapping.workloads[0].name, "conv1");
  EXPECT_EQ(r.mapping.workloads[3].name, "fc2");
}

TEST(Integration, ExperimentIsDeterministic) {
  const auto a = run_experiment(smoke_config());
  const auto b = run_experiment(smoke_config());
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.firing_rate, b.firing_rate);
  EXPECT_DOUBLE_EQ(a.fps_per_watt, b.fps_per_watt);
}

TEST(Integration, SmokeModelLearnsAboveChance) {
  // At smoke scale the test split is too small to generalize, so assert on
  // training accuracy: learning must clearly beat 10-class chance.
  auto cfg = smoke_config();
  cfg.trainer.epochs = 12;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.final_train_accuracy, 0.15);
}

TEST(Integration, HigherThresholdIncreasesSparsity) {
  // Fig. 2 mechanism, end to end through training.
  auto low = smoke_config();
  low.model.lif.threshold = 0.5f;
  auto high = smoke_config();
  high.model.lif.threshold = 2.0f;
  const auto r_low = run_experiment(low);
  const auto r_high = run_experiment(high);
  EXPECT_GT(r_low.firing_rate, r_high.firing_rate);
  // Sparser model -> faster on the event-driven accelerator.
  EXPECT_LT(r_high.latency_us, r_low.latency_us);
}

TEST(Integration, HigherBetaIncreasesFiringRate) {
  auto low = smoke_config();
  low.model.lif.beta = 0.1f;
  auto high = smoke_config();
  high.model.lif.beta = 0.9f;
  const auto r_low = run_experiment(low);
  const auto r_high = run_experiment(high);
  EXPECT_GT(r_high.firing_rate, r_low.firing_rate);
}

TEST(Integration, EventSimValidationAttaches) {
  auto cfg = smoke_config();
  cfg.validate_with_sim = true;
  const auto r = run_experiment(cfg);
  ASSERT_TRUE(r.mapping.event_sim.has_value());
  // VAL-SIM envelope at pipeline level.  The analytic model is mean-value,
  // while the lock-step machine pays per-tick maxima across stages; with a
  // balanced allocation every stage sits near the bound, so spike-count
  // noise inflates the simulated mean by up to ~30% (documented in
  // DESIGN.md).  The simulator must never be faster than ~0.85x analytic.
  EXPECT_GE(r.mapping.event_sim->mean_stage_cycles,
            0.85 * r.mapping.perf.stage_cycles);
  EXPECT_LE(r.mapping.event_sim->mean_stage_cycles,
            1.35 * r.mapping.perf.stage_cycles);
}

TEST(Integration, SurrogateSweepSmoke) {
  auto cfg = smoke_config();
  std::vector<std::string> labels;
  const auto points = run_surrogate_sweep(
      cfg, {"arctan", "fast_sigmoid"}, {1.0, 4.0},
      [&](std::size_t, std::size_t total, const std::string& label) {
        EXPECT_EQ(total, 4u);
        labels.push_back(label);
      });
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(points[0].surrogate, "arctan");
  EXPECT_EQ(points[3].surrogate, "fast_sigmoid");
  EXPECT_EQ(points[3].scale, 4.0);
  for (const auto& p : points) {
    EXPECT_GT(p.result.fps_per_watt, 0.0);
    EXPECT_GE(p.result.accuracy, 0.0);
  }
}

TEST(Integration, BetaThetaSweepSmoke) {
  auto cfg = smoke_config();
  const auto points =
      run_beta_theta_sweep(cfg, {0.25, 0.7}, {1.0, 2.0});
  ASSERT_EQ(points.size(), 4u);
  // Grid order: beta-major.
  EXPECT_EQ(points[0].beta, 0.25);
  EXPECT_EQ(points[0].theta, 1.0);
  EXPECT_EQ(points[3].beta, 0.7);
  EXPECT_EQ(points[3].theta, 2.0);
  // All points trained with fast sigmoid at the paper's slope.
  for (const auto& p : points) EXPECT_GT(p.result.latency_us, 0.0);
}

TEST(Integration, DenseBaselineLessEfficientEndToEnd) {
  // Compare the same trained model mapped as event-driven vs dense.
  auto cfg = smoke_config();
  const auto ours = run_experiment(cfg);
  auto dense_cfg = cfg;
  dense_cfg.accel.mode = hw::ComputeMode::kDense;
  dense_cfg.accel.policy = hw::AllocationPolicy::kBalancedDense;
  const auto dense = run_experiment(dense_cfg);
  // Same model & training -> same accuracy; different hardware economics.
  EXPECT_DOUBLE_EQ(ours.accuracy, dense.accuracy);
  EXPECT_GT(ours.fps_per_watt, dense.fps_per_watt);
  EXPECT_LT(ours.latency_us, dense.latency_us);
}

}  // namespace
}  // namespace spiketune::exp
