// SpikingNetwork: window semantics, spike-count readout, stats recording,
// and BPTT plumbing.  (Full-network finite-difference checks are not
// meaningful through the exact Heaviside forward — surrogate gradients are
// intentionally different from the true a.e.-zero derivative — so network
// level tests assert structure, determinism, and learning-signal liveness;
// per-layer backward math is covered by gradchecks in test_layers/test_lif.)
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "snn/conv2d.h"
#include "snn/linear.h"
#include "snn/model_zoo.h"
#include "snn/pool.h"
#include "tensor/tensor_ops.h"

namespace spiketune::snn {
namespace {

std::vector<Tensor> constant_window(std::int64_t steps, Shape shape,
                                    float value) {
  return std::vector<Tensor>(static_cast<std::size_t>(steps),
                             Tensor::full(std::move(shape), value));
}

TEST(Network, MlpForwardShapes) {
  MlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = 6;
  cfg.num_classes = 4;
  auto net = make_snn_mlp(cfg);
  EXPECT_EQ(net->num_layers(), 4u);
  EXPECT_EQ(net->output_shape(Shape{8}), Shape({4}));

  auto out = net->forward(constant_window(5, Shape{3, 8}, 0.5f));
  EXPECT_EQ(out.spike_counts.shape(), Shape({3, 4}));
  EXPECT_EQ(out.timesteps, 5);
}

TEST(Network, SpikeCountsBounded) {
  MlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = 6;
  cfg.num_classes = 4;
  auto net = make_snn_mlp(cfg);
  const std::int64_t T = 7;
  auto out = net->forward(constant_window(T, Shape{2, 8}, 1.0f));
  for (std::int64_t i = 0; i < out.spike_counts.numel(); ++i) {
    EXPECT_GE(out.spike_counts[i], 0.0f);
    EXPECT_LE(out.spike_counts[i], static_cast<float>(T));
  }
}

TEST(Network, DeterministicForward) {
  MlpConfig cfg;
  auto a = make_snn_mlp(cfg);
  auto b = make_snn_mlp(cfg);
  auto window = constant_window(4, Shape{2, 64}, 0.8f);
  auto oa = a->forward(window);
  auto ob = b->forward(window);
  for (std::int64_t i = 0; i < oa.spike_counts.numel(); ++i)
    EXPECT_EQ(oa.spike_counts[i], ob.spike_counts[i]);
}

TEST(Network, WeightSeedChangesModel) {
  MlpConfig a_cfg;
  MlpConfig b_cfg;
  b_cfg.weight_seed = a_cfg.weight_seed + 1;
  auto a = make_snn_mlp(a_cfg);
  auto b = make_snn_mlp(b_cfg);
  auto pa = a->params();
  auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      if (pa[i]->value[k] != pb[i]->value[k]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Network, StatsRecordInputAndOutputDensities) {
  MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  cfg.num_classes = 4;
  auto net = make_snn_mlp(cfg);
  auto out = net->forward(constant_window(6, Shape{3, 16}, 1.0f),
                          {.record_stats = true});
  const auto& layers = out.stats.layers();
  ASSERT_EQ(layers.size(), 4u);
  // First linear sees the raw (all-ones) input: density 1.
  EXPECT_DOUBLE_EQ(layers[0].input_density(), 1.0);
  // LIF layers marked spiking; linear not.
  EXPECT_FALSE(layers[0].spiking);
  EXPECT_TRUE(layers[1].spiking);
  // Element bookkeeping: 6 steps x 3 samples x 16 features.
  EXPECT_EQ(layers[0].input_elements, 6 * 3 * 16);
  EXPECT_EQ(layers[1].input_elements, 6 * 3 * 8);
}

TEST(Network, StepTraceMatchesAggregate) {
  MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  auto net = make_snn_mlp(cfg);
  auto out = net->forward(constant_window(5, Shape{2, 16}, 0.9f),
                          {.record_stats = true, .record_step_nonzeros = true});
  ASSERT_EQ(out.step_input_nonzeros.size(), 5u);
  for (std::size_t l = 0; l < net->num_layers(); ++l) {
    std::int64_t total = 0;
    for (const auto& step : out.step_input_nonzeros) total += step[l];
    EXPECT_EQ(total, out.stats.layers()[l].input_nonzeros) << "layer " << l;
  }
}

TEST(Network, StepTraceIsOptIn) {
  // record_stats alone must not grow the TxL per-step tally; only the
  // hardware simulator's explicit opt-in pays for it.
  MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  auto net = make_snn_mlp(cfg);
  auto window = constant_window(4, Shape{2, 16}, 0.9f);
  auto stats_only = net->forward(window, {.record_stats = true});
  EXPECT_TRUE(stats_only.step_input_nonzeros.empty());
  EXPECT_GT(stats_only.stats.layers()[0].input_nonzeros, 0);

  // The tally alone works too (no aggregate stats requested).
  auto trace_only = net->forward(window, {.record_step_nonzeros = true});
  ASSERT_EQ(trace_only.step_input_nonzeros.size(), 4u);
  EXPECT_EQ(trace_only.stats.layers()[0].input_nonzeros, 0);
  EXPECT_EQ(trace_only.step_input_nonzeros[0][0], 2 * 16);
}

TEST(Network, BackwardProducesFiniteNonzeroGrads) {
  MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 12;
  cfg.num_classes = 4;
  cfg.lif.threshold = 0.8f;
  auto net = make_snn_mlp(cfg);
  Rng rng(88);
  std::vector<Tensor> window;
  for (int t = 0; t < 6; ++t)
    window.push_back(Tensor::uniform(Shape{4, 16}, rng, 0.0f, 1.0f));

  net->zero_grad();
  auto out = net->forward(window, {.training = true});
  Tensor g(out.spike_counts.shape());
  g.fill(1.0f);
  net->backward(g);

  double grad_l1 = 0.0;
  for (Param* p : net->params())
    for (std::int64_t i = 0; i < p->numel(); ++i) {
      EXPECT_TRUE(std::isfinite(p->grad[i]));
      grad_l1 += std::fabs(p->grad[i]);
    }
  EXPECT_GT(grad_l1, 0.0);
}

TEST(Network, BackwardWithoutForwardThrows) {
  auto net = make_snn_mlp(MlpConfig{});
  Tensor g(Shape{1, 10});
  EXPECT_THROW(net->backward(g), InvalidArgument);
}

TEST(Network, ZeroGradClears) {
  auto net = make_snn_mlp(MlpConfig{});
  auto out = net->forward(constant_window(3, Shape{2, 64}, 1.0f),
                          {.training = true});
  Tensor g(out.spike_counts.shape());
  g.fill(1.0f);
  net->backward(g);
  net->zero_grad();
  for (Param* p : net->params())
    for (std::int64_t i = 0; i < p->numel(); ++i)
      EXPECT_EQ(p->grad[i], 0.0f);
}

TEST(Network, CsnnTopologyShapes) {
  CsnnConfig cfg;  // paper defaults: 32x32x3
  auto net = make_svhn_csnn(cfg);
  // conv(3->32) lif avgpool conv(32->32) lif maxpool flatten fc lif fc lif
  EXPECT_EQ(net->num_layers(), 11u);
  EXPECT_EQ(net->output_shape(Shape{3, 32, 32}), Shape({10}));
}

TEST(Network, CsnnSmallImageShapes) {
  CsnnConfig cfg;
  cfg.image_size = 16;
  auto net = make_svhn_csnn(cfg);
  EXPECT_EQ(net->output_shape(Shape{3, 16, 16}), Shape({10}));
  auto out = net->forward(constant_window(2, Shape{1, 3, 16, 16}, 0.7f));
  EXPECT_EQ(out.spike_counts.shape(), Shape({1, 10}));
}

TEST(Network, CsnnRejectsTinyImages) {
  CsnnConfig cfg;
  cfg.image_size = 8;
  EXPECT_THROW(make_svhn_csnn(cfg), InvalidArgument);
}

TEST(Network, CsnnParameterCount) {
  CsnnConfig cfg;  // 32x32
  auto net = make_svhn_csnn(cfg);
  // conv1: 32*3*9+32; conv2: 32*32*9+32; fc1: 1152*256+256; fc2: 256*10+10.
  const std::int64_t expected = (32 * 27 + 32) + (32 * 288 + 32) +
                                (1152 * 256 + 256) + (256 * 10 + 10);
  EXPECT_EQ(net->num_parameters(), expected);
}

TEST(Network, HigherThresholdFiresLess) {
  // The paper's Fig. 2 mechanism at network level.
  auto rate_for_theta = [](float theta) {
    MlpConfig cfg;
    cfg.lif.threshold = theta;
    auto net = make_snn_mlp(cfg);
    auto out = net->forward(
        std::vector<Tensor>(8, Tensor::full(Shape{4, 64}, 0.9f)),
        {.record_stats = true});
    return out.stats.mean_firing_rate();
  };
  EXPECT_GT(rate_for_theta(0.5f), rate_for_theta(2.0f));
}

}  // namespace
}  // namespace spiketune::snn
