// Loss functions on spike counts: values, gradients (finite differences —
// losses are smooth in the counts), and the accuracy metric.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "snn/loss.h"
#include "tensor/gradcheck.h"

namespace spiketune::snn {
namespace {

TEST(RateCe, UniformCountsGiveLogC) {
  RateCrossEntropyLoss loss(1.0);
  Tensor counts = Tensor::full(Shape{2, 4}, 3.0f);
  const auto r = loss.compute(counts, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(RateCe, CorrectClassDominantGivesSmallLoss) {
  RateCrossEntropyLoss loss(1.0);
  Tensor counts(Shape{1, 3}, {10.0f, 0.0f, 0.0f});
  const auto r = loss.compute(counts, {0});
  EXPECT_LT(r.loss, 1e-3);
}

TEST(RateCe, GradientSumsToZeroPerRow) {
  RateCrossEntropyLoss loss(2.0);
  Tensor counts(Shape{2, 3}, {1, 4, 2, 0, 3, 3});
  const auto r = loss.compute(counts, {1, 2});
  for (int row = 0; row < 2; ++row) {
    float s = 0.0f;
    for (int c = 0; c < 3; ++c) s += r.grad_counts.at({row, c});
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(RateCe, GradientMatchesFiniteDifference) {
  RateCrossEntropyLoss loss(3.0);
  Tensor counts(Shape{2, 4}, {1, 5, 2, 0, 4, 4, 1, 3});
  const std::vector<int> labels{1, 0};
  const auto r = loss.compute(counts, labels);
  auto f = [&](const Tensor& c) { return loss.compute(c, labels).loss; };
  const auto res = check_gradient(f, counts, r.grad_counts, 1e-3);
  EXPECT_TRUE(res.ok(1e-3, 1e-6)) << res.max_rel_error;
}

TEST(RateCe, TemperatureSoftensGradient) {
  Tensor counts(Shape{1, 2}, {5.0f, 0.0f});
  const auto sharp = RateCrossEntropyLoss(1.0).compute(counts, {1});
  const auto soft = RateCrossEntropyLoss(10.0).compute(counts, {1});
  EXPECT_GT(sharp.loss, soft.loss * 0.0);  // both positive
  EXPECT_GT(std::fabs(sharp.grad_counts[0]),
            std::fabs(soft.grad_counts[0]));
}

TEST(RateCe, LabelOutOfRangeThrows) {
  RateCrossEntropyLoss loss;
  Tensor counts(Shape{1, 3});
  EXPECT_THROW(loss.compute(counts, {3}), InvalidArgument);
  EXPECT_THROW(loss.compute(counts, {-1}), InvalidArgument);
}

TEST(RateCe, BatchSizeMismatchThrows) {
  RateCrossEntropyLoss loss;
  Tensor counts(Shape{2, 3});
  EXPECT_THROW(loss.compute(counts, {0}), InvalidArgument);
}

TEST(CountMse, PerfectTargetsGiveZeroLoss) {
  CountMseLoss loss(10, 0.8, 0.1);
  Tensor counts(Shape{1, 2}, {8.0f, 1.0f});
  const auto r = loss.compute(counts, {0});
  EXPECT_NEAR(r.loss, 0.0, 1e-9);
  EXPECT_NEAR(r.grad_counts[0], 0.0f, 1e-7f);
}

TEST(CountMse, GradientMatchesFiniteDifference) {
  CountMseLoss loss(8, 0.75, 0.05);
  Tensor counts(Shape{2, 3}, {1, 6, 2, 3, 0, 5});
  const std::vector<int> labels{1, 2};
  const auto r = loss.compute(counts, labels);
  auto f = [&](const Tensor& c) { return loss.compute(c, labels).loss; };
  const auto res = check_gradient(f, counts, r.grad_counts, 1e-3);
  EXPECT_TRUE(res.ok(1e-3, 1e-6)) << res.max_rel_error;
}

TEST(CountMse, PullsTowardTargets) {
  CountMseLoss loss(10, 0.8, 0.1);
  Tensor counts(Shape{1, 2}, {0.0f, 9.0f});  // correct class silent
  const auto r = loss.compute(counts, {0});
  EXPECT_LT(r.grad_counts[0], 0.0f);  // push correct-class count up
  EXPECT_GT(r.grad_counts[1], 0.0f);  // push wrong-class count down
}

TEST(Accuracy, CountsArgmax) {
  Tensor counts(Shape{3, 3}, {5, 1, 0, 0, 2, 7, 4, 4, 1});
  EXPECT_DOUBLE_EQ(accuracy(counts, {0, 2, 0}), 1.0);
  EXPECT_NEAR(accuracy(counts, {0, 2, 1}), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(accuracy(counts, {1, 0, 2}), 0.0);
}

}  // namespace
}  // namespace spiketune::snn
