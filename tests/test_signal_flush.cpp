// Signal-flush tests: a SIGINT/SIGTERM mid-run must still produce the
// telemetry outputs (--metrics-out, --trace) instead of losing them.  Each
// test forks a child that installs the handler, signals readiness over a
// pipe, and spins; the parent kills it and re-parses the flushed files.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/json.h"
#include "obs/flags.h"
#include "obs/metrics.h"
#include "obs/signal_flush.h"

using namespace spiketune;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Forks a child that enables telemetry writing `metrics_path`, installs
/// the signal-flush handler, reports readiness, and blocks until killed by
/// `signum`.  Returns the child's wait status.
int run_killed_child(const std::string& metrics_path, int signum) {
  int ready[2];
  EXPECT_EQ(pipe(ready), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    // Child: a miniature driver.  No gtest machinery beyond this point.
    close(ready[0]);
    // The session constructor registers itself with the flush handler;
    // install_signal_flush arms SIGINT/SIGTERM (as apply_telemetry_flags
    // does in the drivers).
    obs::TelemetrySession session("", metrics_path, /*profile=*/false);
    obs::install_signal_flush();
    obs::add(obs::counter("test.signal_flush.work"), 7);
    obs::set(obs::gauge("test.signal_flush.progress"), 0.5);
    char byte = 'r';
    (void)!write(ready[1], &byte, 1);
    for (;;) pause();  // wait for the signal; the flusher thread exits us
  }
  close(ready[1]);
  char byte = 0;
  EXPECT_EQ(read(ready[0], &byte, 1), 1);  // child is set up
  close(ready[0]);
  EXPECT_EQ(kill(pid, signum), 0);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

TEST(SignalFlush, SigtermFlushesMetricsAndExits143) {
  const std::string path = temp_path("signal_flush_term.jsonl");
  std::remove(path.c_str());
  const int status = run_killed_child(path, SIGTERM);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);

  // The interrupted run's metrics file exists, parses, and holds the
  // counters the child bumped before dying.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "metrics file missing after SIGTERM";
  std::string line;
  bool saw_counter = false;
  while (std::getline(in, line)) {
    const JsonValue v = JsonValue::parse(line, "metrics-line");
    if (v.string_or("name", "") == "test.signal_flush.work") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(v.number_or("count", 0.0), 7.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(SignalFlush, SigintFlushesAndExits130) {
  const std::string path = temp_path("signal_flush_int.jsonl");
  std::remove(path.c_str());
  const int status = run_killed_child(path, SIGINT);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "metrics file missing after SIGINT";
}

TEST(SignalFlush, ClearedSessionIsNotTouched) {
  // After clear_signal_flush_session, the handler has nothing to flush;
  // install stays armed but the dead session must not be dereferenced.
  obs::TelemetrySession session("", temp_path("signal_flush_noop.jsonl"),
                                false);
  obs::set_signal_flush_session(&session);
  obs::clear_signal_flush_session(&session);
  session.flush();  // flushing an already-cleared session is fine
  SUCCEED();
}

}  // namespace
