// Signal-flush tests: a SIGINT/SIGTERM mid-run must still produce the
// telemetry outputs (--metrics-out, --trace) instead of losing them.  Each
// test forks a child that installs the handler, signals readiness over a
// pipe, and spins; the parent kills it and re-parses the flushed files.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/json.h"
#include "obs/flags.h"
#include "obs/metrics.h"
#include "obs/signal_flush.h"

using namespace spiketune;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Forks a child that enables telemetry writing `metrics_path`, installs
/// the signal-flush handler, reports readiness, and blocks until killed by
/// `signum`.  Returns the child's wait status.
int run_killed_child(const std::string& metrics_path, int signum) {
  int ready[2];
  EXPECT_EQ(pipe(ready), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    // Child: a miniature driver.  No gtest machinery beyond this point.
    close(ready[0]);
    // The session constructor registers itself with the flush handler;
    // install_signal_flush arms SIGINT/SIGTERM (as apply_telemetry_flags
    // does in the drivers).
    obs::TelemetrySession session("", metrics_path, /*profile=*/false);
    obs::install_signal_flush();
    obs::add(obs::counter("test.signal_flush.work"), 7);
    obs::set(obs::gauge("test.signal_flush.progress"), 0.5);
    char byte = 'r';
    (void)!write(ready[1], &byte, 1);
    for (;;) pause();  // wait for the signal; the flusher thread exits us
  }
  close(ready[1]);
  char byte = 0;
  EXPECT_EQ(read(ready[0], &byte, 1), 1);  // child is set up
  close(ready[0]);
  EXPECT_EQ(kill(pid, signum), 0);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

TEST(SignalFlush, SigtermFlushesMetricsAndExits143) {
  const std::string path = temp_path("signal_flush_term.jsonl");
  std::remove(path.c_str());
  const int status = run_killed_child(path, SIGTERM);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);

  // The interrupted run's metrics file exists, parses, and holds the
  // counters the child bumped before dying.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "metrics file missing after SIGTERM";
  std::string line;
  bool saw_counter = false;
  while (std::getline(in, line)) {
    const JsonValue v = JsonValue::parse(line, "metrics-line");
    if (v.string_or("name", "") == "test.signal_flush.work") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(v.number_or("count", 0.0), 7.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(SignalFlush, SigintFlushesAndExits130) {
  const std::string path = temp_path("signal_flush_int.jsonl");
  std::remove(path.c_str());
  const int status = run_killed_child(path, SIGINT);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "metrics file missing after SIGINT";
}

// --- cooperative (daemon) shutdown ------------------------------------------
//
// These tests all fork: install_shutdown_request() arms process-global
// state (and makes install_signal_flush a no-op forever after), so the
// gtest parent must never arm it itself or the flush-and-exit tests above
// would inherit cooperative mode through fork and hang.

/// Forks a child that runs `body` (exit code is the test's verdict) after
/// signalling readiness; returns the child's wait status after the parent
/// ran `parent_action(pid)`.
template <typename Body, typename ParentAction>
int run_forked(Body body, ParentAction parent_action) {
  int ready[2];
  EXPECT_EQ(pipe(ready), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    close(ready[0]);
    body(ready[1]);  // never returns
    _exit(99);
  }
  close(ready[1]);
  char byte = 0;
  EXPECT_EQ(read(ready[0], &byte, 1), 1);
  close(ready[0]);
  parent_action(pid);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

void signal_ready(int fd) {
  char byte = 'r';
  (void)!write(fd, &byte, 1);
}

TEST(CooperativeShutdown, SigtermDrainsFlushesAndExitsZero) {
  const std::string path = temp_path("coop_shutdown.jsonl");
  std::remove(path.c_str());
  const int status = run_forked(
      [&](int ready_fd) {
        // A miniature daemon: cooperative shutdown armed BEFORE telemetry,
        // exactly as serve_main does.
        obs::install_shutdown_request();
        obs::TelemetrySession session("", path, false);
        obs::install_signal_flush();  // must be a no-op (precedence)
        obs::add(obs::counter("test.coop.served"), 3);
        signal_ready(ready_fd);
        while (!obs::shutdown_requested()) {
          struct pollfd pfd = {obs::shutdown_fd(), POLLIN, 0};
          poll(&pfd, 1, 1000);
        }
        if (obs::shutdown_signum() != SIGTERM) _exit(4);
        // "Drain": record post-signal work, then flush and leave cleanly —
        // a flush-and-exit handler would have _exit(143)ed before this.
        obs::add(obs::counter("test.coop.drained"), 1);
        session.flush();
        _exit(0);
      },
      [](pid_t pid) { EXPECT_EQ(kill(pid, SIGTERM), 0); });
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "cooperative drain did not exit 0";

  // The drain flushed, so BOTH counters (pre- and post-signal) are there.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  bool saw_served = false, saw_drained = false;
  std::string line;
  while (std::getline(in, line)) {
    const JsonValue v = JsonValue::parse(line, "metrics-line");
    if (v.string_or("name", "") == "test.coop.served") saw_served = true;
    if (v.string_or("name", "") == "test.coop.drained") saw_drained = true;
  }
  EXPECT_TRUE(saw_served);
  EXPECT_TRUE(saw_drained) << "post-signal work missing: drain was cut short";
}

TEST(CooperativeShutdown, SecondSignalForceKillsAStuckDrain) {
  // Handler re-entry: the first SIGTERM runs the self-pipe handler and
  // resets the disposition (SA_RESETHAND), so a second SIGTERM delivers
  // the default action and kills a drain that never finishes.
  const int status = run_forked(
      [](int ready_fd) {
        obs::install_shutdown_request();
        signal_ready(ready_fd);
        for (;;) pause();  // a "stuck drain": ignores the flag forever
      },
      [](pid_t pid) {
        EXPECT_EQ(kill(pid, SIGTERM), 0);
        // Give the handler time to run (and reset) before re-signalling.
        usleep(100000);
        EXPECT_EQ(kill(pid, SIGTERM), 0);
      });
  ASSERT_TRUE(WIFSIGNALED(status)) << "second SIGTERM did not kill the child";
  EXPECT_EQ(WTERMSIG(status), SIGTERM);
}

TEST(CooperativeShutdown, FlagAndPipeResetForTest) {
  const int status = run_forked(
      [](int ready_fd) {
        obs::install_shutdown_request();
        if (obs::shutdown_requested()) _exit(10);
        if (obs::shutdown_fd() < 0) _exit(11);
        signal_ready(ready_fd);
        raise(SIGTERM);  // handler sets the flag; process keeps running
        if (!obs::shutdown_requested()) _exit(12);
        if (obs::shutdown_signum() != SIGTERM) _exit(13);
        struct pollfd pfd = {obs::shutdown_fd(), POLLIN, 0};
        if (poll(&pfd, 1, 0) != 1) _exit(14);  // pipe is readable
        // Reset re-arms the handlers and drains the pipe...
        obs::reset_shutdown_request_for_test();
        if (obs::shutdown_requested()) _exit(15);
        pfd = {obs::shutdown_fd(), POLLIN, 0};
        if (poll(&pfd, 1, 0) != 0) _exit(16);
        // ...so a second observe cycle works in the same process.
        raise(SIGINT);
        if (!obs::shutdown_requested()) _exit(17);
        if (obs::shutdown_signum() != SIGINT) _exit(18);
        _exit(0);
      },
      [](pid_t) {});
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child failed at step "
                                    << WEXITSTATUS(status);
}

TEST(SignalFlush, ClearedSessionIsNotTouched) {
  // After clear_signal_flush_session, the handler has nothing to flush;
  // install stays armed but the dead session must not be dereferenced.
  obs::TelemetrySession session("", temp_path("signal_flush_noop.jsonl"),
                                false);
  obs::set_signal_flush_session(&session);
  obs::clear_signal_flush_session(&session);
  session.flush();  // flushing an already-cleared session is fine
  SUCCEED();
}

}  // namespace
