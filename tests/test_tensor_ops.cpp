// Unit tests for elementwise/reduction/nn kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "tensor/tensor_ops.h"

namespace spiketune {
namespace {

TEST(Ops, AddSubMulScale) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  Tensor c = ops::add(a, b);
  EXPECT_EQ(c[0], 11.0f);
  EXPECT_EQ(c[2], 33.0f);
  c = ops::sub(b, a);
  EXPECT_EQ(c[1], 18.0f);
  c = ops::mul(a, b);
  EXPECT_EQ(c[2], 90.0f);
  c = ops::scale(a, -2.0f);
  EXPECT_EQ(c[0], -2.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(ops::add(a, b), InvalidArgument);
  EXPECT_THROW(ops::mul(a, b), InvalidArgument);
}

TEST(Ops, Axpy) {
  Tensor a(Shape{2}, {1, 1});
  Tensor b(Shape{2}, {2, 4});
  ops::axpy_(a, 0.5f, b);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(Ops, AddRowwise) {
  Tensor m(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor v(Shape{3}, {10, 20, 30});
  ops::add_rowwise_(m, v);
  EXPECT_EQ(m.at({0, 0}), 10.0f);
  EXPECT_EQ(m.at({1, 2}), 31.0f);
}

TEST(Ops, SumRows) {
  Tensor m(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = ops::sum_rows(m, 3);
  EXPECT_EQ(s[0], 5.0f);
  EXPECT_EQ(s[1], 7.0f);
  EXPECT_EQ(s[2], 9.0f);
}

TEST(Ops, Reductions) {
  Tensor t(Shape{4}, {-1, 3, 0, 2});
  EXPECT_FLOAT_EQ(ops::sum(t), 4.0f);
  EXPECT_FLOAT_EQ(ops::mean(t), 1.0f);
  EXPECT_FLOAT_EQ(ops::max(t), 3.0f);
  EXPECT_FLOAT_EQ(ops::min(t), -1.0f);
  EXPECT_EQ(ops::argmax(t), 1);
  EXPECT_EQ(ops::count_nonzero(t), 3);
  EXPECT_DOUBLE_EQ(ops::zero_fraction(t), 0.25);
  EXPECT_NEAR(ops::l2_norm(t), std::sqrt(14.0f), 1e-5);
}

TEST(Ops, ArgmaxFirstOnTies) {
  Tensor t(Shape{3}, {5, 5, 5});
  EXPECT_EQ(ops::argmax(t), 0);
}

TEST(Ops, SoftmaxRowsNormalized) {
  Tensor logits(Shape{2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = ops::softmax_rows(logits, 3);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += p.at({r, c});
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  // monotone in logits
  EXPECT_LT(p.at({0, 0}), p.at({0, 1}));
  EXPECT_LT(p.at({0, 1}), p.at({0, 2}));
}

TEST(Ops, SoftmaxStableForLargeLogits) {
  Tensor logits(Shape{1, 2}, {1000.0f, 1001.0f});
  Tensor p = ops::softmax_rows(logits, 2);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-6);
  EXPECT_GT(p[1], p[0]);
}

TEST(Ops, ArgmaxRows) {
  Tensor m(Shape{2, 3}, {1, 9, 2, 7, 1, 3});
  const auto idx = ops::argmax_rows(m, 3);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, Clamp) {
  Tensor t(Shape{3}, {-5, 0.5f, 7});
  ops::clamp_(t, 0.0f, 1.0f);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 0.5f);
  EXPECT_EQ(t[2], 1.0f);
}

TEST(Ops, HeavisideStrictlyGreater) {
  Tensor t(Shape{3}, {0.9f, 1.0f, 1.1f});
  Tensor h = ops::heaviside(t, 1.0f);
  EXPECT_EQ(h[0], 0.0f);
  EXPECT_EQ(h[1], 0.0f);  // strictly greater, not >=
  EXPECT_EQ(h[2], 1.0f);
}

TEST(Ops, EmptyReductionsThrow) {
  Tensor t(Shape{0});
  EXPECT_THROW(ops::mean(t), InvalidArgument);
  EXPECT_THROW(ops::argmax(t), InvalidArgument);
}

}  // namespace
}  // namespace spiketune
