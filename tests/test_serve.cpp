// Serving-daemon tests: wire protocol round-trips, dynamic-batcher
// admission/coalescing semantics, and end-to-end Server integration over
// real TCP connections — including the bitwise parity contract (a served
// response equals a direct InferenceSession run on the same window,
// whatever batch it rode in) and drain-safe shutdown with requests in
// flight.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "core/rng.h"
#include "infer/session.h"
#include "obs/signal_flush.h"
#include "obs/spans.h"
#include "obs/telemetry.h"
#include "serve/batcher.h"
#include "serve/fault.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "snn/model_zoo.h"

namespace spiketune::serve {
namespace {

// --- protocol ---------------------------------------------------------------

TEST(ServeProtocol, HeaderRoundTrip) {
  FrameHeader h;
  h.kind = FrameKind::kInferResponse;
  h.request_id = 0x1122334455667788ULL;
  h.payload_bytes = 412;
  std::uint8_t raw[kHeaderBytes];
  encode_header(h, raw);
  const FrameHeader back = decode_header(raw);
  EXPECT_EQ(back.magic, kMagic);
  EXPECT_EQ(back.kind, FrameKind::kInferResponse);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.payload_bytes, h.payload_bytes);
}

TEST(ServeProtocol, RejectsBadMagicAndUnknownKind) {
  FrameHeader h;
  std::uint8_t raw[kHeaderBytes];
  encode_header(h, raw);
  std::uint8_t bad[kHeaderBytes];
  std::memcpy(bad, raw, kHeaderBytes);
  bad[0] ^= 0xff;  // corrupt the magic
  EXPECT_THROW(decode_header(bad), InvalidArgument);
  // Byte-swapped magic = wrong-endian peer: also rejected.
  std::memcpy(bad, raw, kHeaderBytes);
  std::swap(bad[0], bad[3]);
  std::swap(bad[1], bad[2]);
  EXPECT_THROW(decode_header(bad), InvalidArgument);
  std::memcpy(bad, raw, kHeaderBytes);
  bad[4] = 0x7f;  // kind outside the enum
  EXPECT_THROW(decode_header(bad), InvalidArgument);
}

TEST(ServeProtocol, HeaderRejectsOversizedPayload) {
  FrameHeader h;
  std::uint8_t raw[kHeaderBytes];
  h.payload_bytes = kMaxPayloadBytes;
  encode_header(h, raw);
  EXPECT_EQ(decode_header(raw).payload_bytes, kMaxPayloadBytes);
  h.payload_bytes = kMaxPayloadBytes + 1;
  encode_header(h, raw);
  EXPECT_THROW(decode_header(raw), InvalidArgument);
  h.payload_bytes = 0xffffffffu;
  encode_header(h, raw);
  EXPECT_THROW(decode_header(raw), InvalidArgument);
}

TEST(ServeProtocol, RejectsOverflowingRequestDims) {
  // num_steps = elems_per_step = 2^31: the element count times
  // sizeof(float) wraps to 0 modulo 2^64, so a multiply-based size check
  // would accept this 8-byte payload and then die inside resize().  The
  // decoder must reject it as InvalidArgument instead.
  const std::uint32_t huge = 1u << 31;
  std::vector<std::uint8_t> payload;
  const auto* p = reinterpret_cast<const std::uint8_t*>(&huge);
  payload.insert(payload.end(), p, p + 4);  // num_steps
  payload.insert(payload.end(), p, p + 4);  // elems_per_step
  EXPECT_THROW(decode_request(42, payload), InvalidArgument);

  // A trailing byte count that is not a multiple of sizeof(float) can
  // never agree with any (num_steps, elems_per_step): also rejected.
  payload.push_back(0);
  EXPECT_THROW(decode_request(42, payload), InvalidArgument);
}

TEST(ServeProtocol, RequestRoundTripAndTruncationChecks) {
  InferRequest r;
  r.request_id = 42;
  r.num_steps = 3;
  r.elems_per_step = 4;
  Rng rng(7);
  for (int i = 0; i < 12; ++i)
    r.data.push_back(static_cast<float>(rng.normal()));
  const std::vector<std::uint8_t> payload = encode_request(r);
  const InferRequest back = decode_request(r.request_id, payload);
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.num_steps, 3u);
  EXPECT_EQ(back.elems_per_step, 4u);
  ASSERT_EQ(back.data.size(), r.data.size());
  EXPECT_EQ(std::memcmp(back.data.data(), r.data.data(),
                        r.data.size() * sizeof(float)),
            0);

  // Truncated payload and inconsistent dims both throw.
  std::vector<std::uint8_t> cut(payload.begin(), payload.end() - 4);
  EXPECT_THROW(decode_request(42, cut), InvalidArgument);
  EXPECT_THROW(decode_request(42, std::vector<std::uint8_t>{1, 2, 3}),
               InvalidArgument);
}

TEST(ServeProtocol, ResponseAndErrorRoundTrip) {
  InferResponse r;
  r.request_id = 9;
  r.out_features = 3;
  r.batch = 5;
  r.queue_ns = 1234;
  r.assemble_ns = 777;
  r.infer_ns = 987654321;
  r.spike_counts = {1.0f, 0.0f, 2.5f};
  const InferResponse back = decode_response(9, encode_response(r));
  EXPECT_EQ(back.batch, 5u);
  EXPECT_EQ(back.queue_ns, 1234u);
  EXPECT_EQ(back.assemble_ns, 777u);
  EXPECT_EQ(back.infer_ns, 987654321u);
  ASSERT_EQ(back.spike_counts.size(), 3u);
  EXPECT_EQ(std::memcmp(back.spike_counts.data(), r.spike_counts.data(),
                        3 * sizeof(float)),
            0);

  ErrorResponse e;
  e.request_id = 9;
  e.code = ErrorCode::kOverloaded;
  e.message = "queue at max depth";
  const ErrorResponse eback = decode_error(9, encode_error(e));
  EXPECT_EQ(eback.code, ErrorCode::kOverloaded);
  EXPECT_EQ(eback.message, "queue at max depth");
  EXPECT_STREQ(error_code_name(ErrorCode::kShuttingDown), "shutting-down");
}

TEST(ServeProtocol, StatPayloadRoundTrip) {
  const std::string json = "{\"served\":3,\"qps\":12.5}";
  EXPECT_EQ(decode_stat(encode_stat(json)), json);
  EXPECT_TRUE(decode_stat(encode_stat("")).empty());
}

TEST(ServeProtocol, HeaderVersionRoundTripAndLegacyZeroByte) {
  FrameHeader h;
  h.kind = FrameKind::kInferRequest;
  h.version = 2;
  std::uint8_t raw[kHeaderBytes];
  encode_header(h, raw);
  EXPECT_EQ(raw[5], 2);  // version lives in the kind word's second byte
  EXPECT_EQ(decode_header(raw).version, 2u);

  // Version 1 encodes as a ZERO byte so a v1 frame is byte-identical to
  // the pre-versioning wire format, and a zero byte decodes back as v1 —
  // old clients and old captures keep working unchanged.
  h.version = 1;
  encode_header(h, raw);
  EXPECT_EQ(raw[5], 0);
  EXPECT_EQ(decode_header(raw).version, 1u);

  // A version above kProtocolVersion is a different protocol: rejected.
  raw[5] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_THROW(decode_header(raw), InvalidArgument);
}

TEST(ServeProtocol, RequestDeadlineRoundTripAndV1Layout) {
  InferRequest r;
  r.request_id = 13;
  r.num_steps = 2;
  r.elems_per_step = 3;
  r.deadline_us = 123456;
  r.data = {1, 0, 1, 0, 1, 0};
  const std::vector<std::uint8_t> v2 = encode_request(r);
  EXPECT_EQ(v2.size(), 16u + r.data.size() * sizeof(float));
  const InferRequest back = decode_request(13, v2);
  EXPECT_EQ(back.deadline_us, 123456u);
  EXPECT_EQ(back.num_steps, 2u);
  ASSERT_EQ(back.data.size(), r.data.size());

  // The v1 layout has no deadline field: 8 bytes of dims + the floats,
  // exactly what the original protocol shipped.
  r.deadline_us = 0;
  const std::vector<std::uint8_t> v1 = encode_request(r, 1);
  EXPECT_EQ(v1.size(), 8u + r.data.size() * sizeof(float));
  EXPECT_EQ(decode_request(13, v1, 1).deadline_us, 0u);

  // A nonzero deadline cannot ride a v1 frame: refused, never dropped.
  r.deadline_us = 5;
  EXPECT_THROW(encode_request(r, 1), Error);
}

TEST(ServeProtocol, V2ErrorCodesRoundTrip) {
  ErrorResponse e;
  e.request_id = 4;
  e.code = ErrorCode::kDeadlineExceeded;
  e.message = "late";
  EXPECT_EQ(decode_error(4, encode_error(e)).code,
            ErrorCode::kDeadlineExceeded);
  e.code = ErrorCode::kInternalError;
  EXPECT_EQ(decode_error(4, encode_error(e)).code, ErrorCode::kInternalError);
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternalError), "internal-error");
  // One past the last known code: rejected at decode.
  e.code = static_cast<ErrorCode>(6);
  EXPECT_THROW(decode_error(4, encode_error(e)), InvalidArgument);
}

// --- batcher ----------------------------------------------------------------

PendingRequest pending(std::uint32_t num_steps, std::uint64_t id = 0,
                       std::uint64_t deadline_ns = 0) {
  PendingRequest p;
  p.request.request_id = id;
  p.request.num_steps = num_steps;
  p.deadline_ns = deadline_ns;
  return p;
}

/// Dequeue for tests of the deadline-free batching rules: nothing queued
/// carries a deadline, so the expired out-parameter must stay empty.
std::vector<PendingRequest> take_batch(Batcher& b) {
  std::vector<PendingRequest> expired;
  std::vector<PendingRequest> batch = b.next_batch(expired);
  EXPECT_TRUE(expired.empty());
  return batch;
}

TEST(ServeBatcher, AdmissionControlBoundsQueueDepth) {
  Batcher b({.max_batch = 4, .batch_timeout_us = 0, .max_queue_depth = 2});
  EXPECT_EQ(b.submit(pending(4)), AdmitResult::kAdmitted);
  EXPECT_EQ(b.submit(pending(4)), AdmitResult::kAdmitted);
  EXPECT_EQ(b.submit(pending(4)), AdmitResult::kQueueFull);
  EXPECT_EQ(b.depth(), 2u);
}

TEST(ServeBatcher, DrainRejectsSubmitsAndReleasesWorkers) {
  Batcher b({.max_batch = 4, .batch_timeout_us = 0, .max_queue_depth = 8});
  b.drain();
  EXPECT_TRUE(b.draining());
  EXPECT_EQ(b.submit(pending(4)), AdmitResult::kDraining);
  // Draining + empty queue: next_batch returns empty instead of blocking.
  EXPECT_TRUE(take_batch(b).empty());
}

TEST(ServeBatcher, DrainServesQueuedWorkBeforeReleasing) {
  Batcher b({.max_batch = 2, .batch_timeout_us = 0, .max_queue_depth = 8});
  ASSERT_EQ(b.submit(pending(4, 1)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(4, 2)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(4, 3)), AdmitResult::kAdmitted);
  b.drain();
  EXPECT_EQ(take_batch(b).size(), 2u);  // admitted work still comes out
  EXPECT_EQ(take_batch(b).size(), 1u);
  EXPECT_TRUE(take_batch(b).empty());  // then the drain signal
}

TEST(ServeBatcher, CoalescesSameWindowLengthOnly) {
  // Queue: T=4, T=4, T=2, T=4.  The first batch takes the three T=4
  // requests (in arrival order); T=2 stays queued and forms the next batch.
  Batcher b({.max_batch = 8, .batch_timeout_us = 0, .max_queue_depth = 16});
  ASSERT_EQ(b.submit(pending(4, 1)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(4, 2)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(2, 3)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(4, 4)), AdmitResult::kAdmitted);

  const auto first = take_batch(b);
  ASSERT_EQ(first.size(), 3u);
  for (const PendingRequest& p : first) EXPECT_EQ(p.request.num_steps, 4u);
  EXPECT_EQ(first[0].request.request_id, 1u);
  EXPECT_EQ(first[1].request.request_id, 2u);
  EXPECT_EQ(first[2].request.request_id, 4u);

  const auto second = take_batch(b);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].request.request_id, 3u);
  EXPECT_EQ(second[0].request.num_steps, 2u);
}

TEST(ServeBatcher, RespectsMaxBatch) {
  Batcher b({.max_batch = 2, .batch_timeout_us = 0, .max_queue_depth = 16});
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_EQ(b.submit(pending(4, i)), AdmitResult::kAdmitted);
  EXPECT_EQ(take_batch(b).size(), 2u);
  EXPECT_EQ(take_batch(b).size(), 2u);
  EXPECT_EQ(take_batch(b).size(), 1u);
  EXPECT_EQ(b.depth(), 0u);
}

TEST(ServeBatcher, LatencyBudgetPicksUpLateArrivals) {
  Batcher b({.max_batch = 4, .batch_timeout_us = 200000,
             .max_queue_depth = 16});
  ASSERT_EQ(b.submit(pending(4, 1)), AdmitResult::kAdmitted);
  std::thread late([&b] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(b.submit(pending(4, 2)), AdmitResult::kAdmitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.drain();  // close the window so next_batch returns promptly
  });
  const auto batch = take_batch(b);
  late.join();
  ASSERT_EQ(batch.size(), 2u);  // the late arrival joined the open batch
  EXPECT_EQ(batch[1].request.request_id, 2u);
}

TEST(ServeBatcher, ShedsExpiredEntriesAtDequeue) {
  Batcher b({.max_batch = 4, .batch_timeout_us = 0, .max_queue_depth = 16});
  const std::uint64_t now = obs::telemetry_now_ns();
  ASSERT_EQ(b.submit(pending(4, 1)), AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(4, 2, /*deadline_ns=*/now)),  // already expired
            AdmitResult::kAdmitted);
  ASSERT_EQ(b.submit(pending(4, 3, now + 60'000'000'000ull)),  // +60 s
            AdmitResult::kAdmitted);
  std::vector<PendingRequest> expired;
  const auto batch = b.next_batch(expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].request.request_id, 2u);
  ASSERT_EQ(batch.size(), 2u);  // the live requests still coalesce
  EXPECT_EQ(batch[0].request.request_id, 1u);
  EXPECT_EQ(batch[1].request.request_id, 3u);
  EXPECT_EQ(b.depth(), 0u);
}

TEST(ServeBatcher, ExpiredOnlyQueueReturnsPromptlyWithoutBlocking) {
  // Everything queued is stale: next_batch must hand the expired entries
  // back immediately (they still need kDeadlineExceeded answers) instead
  // of blocking for a live arrival that may never come.
  Batcher b({.max_batch = 4, .batch_timeout_us = 0, .max_queue_depth = 16});
  ASSERT_EQ(b.submit(pending(4, 1, obs::telemetry_now_ns())),
            AdmitResult::kAdmitted);
  std::vector<PendingRequest> expired;
  EXPECT_TRUE(b.next_batch(expired).empty());
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].request.request_id, 1u);
}

TEST(ServeBatcher, DrainStillShedsExpiredBeforeReleasingWorkers) {
  Batcher b({.max_batch = 4, .batch_timeout_us = 0, .max_queue_depth = 16});
  ASSERT_EQ(b.submit(pending(4, 1, obs::telemetry_now_ns())),
            AdmitResult::kAdmitted);
  b.drain();
  // First pass: the expired entry comes out for shedding, not inference.
  std::vector<PendingRequest> expired;
  EXPECT_TRUE(b.next_batch(expired).empty());
  ASSERT_EQ(expired.size(), 1u);
  // Second pass: dry and draining — the worker-exit signal.
  expired.clear();
  EXPECT_TRUE(b.next_batch(expired).empty());
  EXPECT_TRUE(expired.empty());
}

// --- server integration -----------------------------------------------------

struct MlpServer {
  std::unique_ptr<snn::SpikingNetwork> net;
  Shape per_sample;
  infer::CompiledModel model;
  std::unique_ptr<Server> server;

  explicit MlpServer(ServerConfig cfg = {})
      : net(snn::make_snn_mlp({})),
        per_sample({snn::MlpConfig{}.in_features}),
        model(infer::CompiledModel::compile(*net, per_sample)) {
    cfg.port = 0;  // ephemeral
    server = std::make_unique<Server>(model, cfg);
    server->start();
  }
};

InferRequest random_request(std::uint64_t id, std::uint32_t num_steps,
                            std::int64_t elems, Rng& rng) {
  InferRequest r;
  r.request_id = id;
  r.num_steps = num_steps;
  r.elems_per_step = static_cast<std::uint32_t>(elems);
  r.data.resize(static_cast<std::size_t>(num_steps) *
                static_cast<std::size_t>(elems));
  for (float& v : r.data) v = rng.uniform() < 0.2 ? 1.0f : 0.0f;
  return r;
}

// Direct single-sample reference run for the parity checks.
std::vector<float> reference_counts(const infer::CompiledModel& model,
                                    const Shape& per_sample,
                                    const InferRequest& r) {
  infer::InferenceSession session(model, {.max_batch = 1});
  std::vector<std::int64_t> dims{1};
  for (std::int64_t d : per_sample.dims()) dims.push_back(d);
  const std::int64_t elems = per_sample.numel();
  std::vector<Tensor> window;
  for (std::uint32_t t = 0; t < r.num_steps; ++t) {
    Tensor x{Shape(dims)};
    std::memcpy(x.data(), r.data.data() + t * elems,
                static_cast<std::size_t>(elems) * sizeof(float));
    window.push_back(std::move(x));
  }
  const auto out = session.run(window);
  return {out.spike_counts.data(),
          out.spike_counts.data() + out.spike_counts.numel()};
}

TEST(ServeServer, SingleRequestMatchesDirectSessionBitwise) {
  MlpServer s;
  Rng rng(11);
  const std::int64_t elems = s.per_sample.numel();
  TcpClient client("127.0.0.1", s.server->port(), /*retry_ms=*/2000);
  const InferRequest req = random_request(7, 6, elems, rng);
  const TcpClient::Reply reply = client.roundtrip(req);
  ASSERT_TRUE(reply.ok) << reply.error.message;
  EXPECT_EQ(reply.response.request_id, 7u);
  EXPECT_GE(reply.response.batch, 1u);

  const std::vector<float> want = reference_counts(s.model, s.per_sample, req);
  ASSERT_EQ(reply.response.spike_counts.size(), want.size());
  EXPECT_EQ(std::memcmp(reply.response.spike_counts.data(), want.data(),
                        want.size() * sizeof(float)),
            0)
      << "served spike counts differ from a direct InferenceSession run";
}

TEST(ServeServer, ConcurrentClientsAllGetBitwiseParity) {
  MlpServer s({.num_workers = 2, .max_batch = 8, .batch_timeout_us = 1000});
  const std::int64_t elems = s.per_sample.numel();
  const int port = s.server->port();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + static_cast<std::uint64_t>(c));
      TcpClient client("127.0.0.1", port, 2000);
      for (int i = 0; i < kPerThread; ++i) {
        const InferRequest req = random_request(
            static_cast<std::uint64_t>(c * 1000 + i), 4, elems, rng);
        const TcpClient::Reply reply = client.roundtrip(req);
        if (!reply.ok) {
          ++mismatches[static_cast<std::size_t>(c)];
          continue;
        }
        const std::vector<float> want =
            reference_counts(s.model, s.per_sample, req);
        if (std::memcmp(reply.response.spike_counts.data(), want.data(),
                        want.size() * sizeof(float)) != 0)
          ++mismatches[static_cast<std::size_t>(c)];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kThreads; ++c)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0) << "client " << c;
  const Server::Stats stats = s.server->stats();
  EXPECT_EQ(stats.served, kThreads * kPerThread);
  EXPECT_EQ(stats.bad_requests, 0);
  EXPECT_GE(stats.max_batch_seen, 1);
}

TEST(ServeServer, RejectsMalformedRequests) {
  MlpServer s({.max_steps = 8});
  Rng rng(3);
  const std::int64_t elems = s.per_sample.numel();
  TcpClient client("127.0.0.1", s.server->port(), 2000);

  // Shape mismatch with the model input.
  InferRequest wrong_elems = random_request(1, 4, elems + 1, rng);
  TcpClient::Reply reply = client.roundtrip(wrong_elems);
  ASSERT_FALSE(reply.ok);
  ASSERT_FALSE(reply.disconnected);
  EXPECT_EQ(reply.error.code, ErrorCode::kBadRequest);

  // Window length above the configured cap.
  InferRequest too_long = random_request(2, 9, elems, rng);
  reply = client.roundtrip(too_long);
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, ErrorCode::kBadRequest);

  // The connection survives bad requests: a good one still round-trips.
  reply = client.roundtrip(random_request(3, 4, elems, rng));
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(s.server->stats().bad_requests, 2);
}

// Raw-socket helpers for sending hostile bytes TcpClient never would.
// `rcvbuf` (if nonzero) shrinks SO_RCVBUF before connecting, so a peer
// that never reads wedges the daemon's sends after a few KiB.
int connect_raw(int port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0)
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void send_raw(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool recv_exact(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool recv_frame_raw(int fd, FrameHeader& header,
                    std::vector<std::uint8_t>& payload) {
  std::uint8_t raw[kHeaderBytes];
  if (!recv_exact(fd, raw, kHeaderBytes)) return false;
  header = decode_header(raw);
  payload.resize(header.payload_bytes);
  return payload.empty() || recv_exact(fd, payload.data(), payload.size());
}

/// One full frame (header + payload) as raw wire bytes.
std::vector<std::uint8_t> frame_bytes(const InferRequest& req,
                                      std::uint32_t version) {
  const std::vector<std::uint8_t> payload = encode_request(req, version);
  FrameHeader h;
  h.kind = FrameKind::kInferRequest;
  h.version = version;
  h.request_id = req.request_id;
  h.payload_bytes = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out(kHeaderBytes);
  encode_header(h, out.data());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

TEST(ServeServer, HostileFramesNeverKillTheDaemon) {
  MlpServer s;
  const int port = s.server->port();

  // 1. Overflowing dims (num_steps = elems = 2^31 in an 8-byte payload):
  //    answered with bad-request; the connection stays usable.
  {
    const int fd = connect_raw(port);
    FrameHeader h;
    h.kind = FrameKind::kInferRequest;
    h.request_id = 77;
    h.payload_bytes = 8;
    std::uint8_t raw[kHeaderBytes];
    encode_header(h, raw);
    send_raw(fd, raw, kHeaderBytes);
    const std::uint32_t huge = 1u << 31;
    std::uint8_t dims[8];
    std::memcpy(dims, &huge, 4);
    std::memcpy(dims + 4, &huge, 4);
    send_raw(fd, dims, 8);
    FrameHeader rh;
    std::vector<std::uint8_t> rp;
    ASSERT_TRUE(recv_frame_raw(fd, rh, rp));
    EXPECT_EQ(rh.kind, FrameKind::kError);
    EXPECT_EQ(decode_error(rh.request_id, rp).code, ErrorCode::kBadRequest);
    ::close(fd);
  }

  // 2. A header claiming a ~4 GiB payload: the daemon drops the connection
  //    (framing is unrecoverable) without allocating or aborting.
  {
    const int fd = connect_raw(port);
    FrameHeader h;
    h.kind = FrameKind::kInferRequest;
    h.request_id = 78;
    h.payload_bytes = 0xffffffffu;
    std::uint8_t raw[kHeaderBytes];
    encode_header(h, raw);
    send_raw(fd, raw, kHeaderBytes);
    std::uint8_t b;
    EXPECT_LE(::recv(fd, &b, 1, 0), 0);  // server closed, not crashed
    ::close(fd);
  }

  // 3. The daemon survived both: a well-formed request still round-trips
  //    with bitwise parity.
  Rng rng(5);
  TcpClient client("127.0.0.1", port, 2000);
  const InferRequest req = random_request(9, 4, s.per_sample.numel(), rng);
  const TcpClient::Reply reply = client.roundtrip(req);
  ASSERT_TRUE(reply.ok) << reply.error.message;
  const std::vector<float> want = reference_counts(s.model, s.per_sample, req);
  EXPECT_EQ(std::memcmp(reply.response.spike_counts.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
  EXPECT_GE(s.server->stats().bad_requests, 2);
}

TEST(ServeServer, DrainAnswersInFlightRequestsAndStopsAdmissions) {
  MlpServer s({.num_workers = 2, .max_batch = 4, .batch_timeout_us = 500});
  const std::int64_t elems = s.per_sample.numel();
  const int port = s.server->port();
  constexpr int kThreads = 4;
  std::atomic<int> completed{0};
  std::atomic<int> shutdown_seen{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(200 + static_cast<std::uint64_t>(c));
      TcpClient client("127.0.0.1", port, 2000);
      for (int i = 0; i < 200; ++i) {
        const TcpClient::Reply reply = client.roundtrip(random_request(
            static_cast<std::uint64_t>(i), 4, elems, rng));
        if (reply.ok) {
          ++completed;
        } else if (reply.disconnected ||
                   reply.error.code == ErrorCode::kShuttingDown) {
          ++shutdown_seen;
          return;  // daemon drained away mid-burst: expected
        } else {
          ++unexpected;
          return;
        }
      }
    });
  }
  // Let some requests land, then drain while the clients keep pushing.
  while (completed.load() < 8) std::this_thread::yield();
  s.server->drain_and_stop();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GE(completed.load(), 8);
  const Server::Stats stats = s.server->stats();
  // Every request the daemon admitted was answered: the clients' completed
  // tally equals the server's served counter (no response vanished).
  EXPECT_EQ(stats.served, completed.load());
  EXPECT_EQ(stats.dropped_responses, 0);
  EXPECT_FALSE(s.server->running());
  // Idempotent: a second drain is a no-op.
  s.server->drain_and_stop();
}

TEST(ServeServer, StatReportsConsistentWindowedBreakdown) {
  const std::string span_log = ::testing::TempDir() + "/serve_stat_spans.jsonl";
  std::remove(span_log.c_str());
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 500;
  cfg.span_sample_every = 1;  // record every request
  cfg.span_log = span_log;
  cfg.slo_target_ms = 10000.0;  // generous: every request should pass
  MlpServer s(cfg);
  Rng rng(21);
  const std::int64_t elems = s.per_sample.numel();
  TcpClient client("127.0.0.1", s.server->port(), 2000);

  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const TcpClient::Reply reply = client.roundtrip(
        random_request(static_cast<std::uint64_t>(i + 1), 4, elems, rng));
    ASSERT_TRUE(reply.ok) << reply.error.message;
    // The response metadata carries the per-request stage split.
    EXPECT_GT(reply.response.infer_ns, 0u);
  }

  // STAT on the same connection, interleaved with inference traffic.
  const TcpClient::StatReply stat = client.stat(777);
  ASSERT_TRUE(stat.ok);
  ASSERT_FALSE(stat.disconnected);
  const JsonValue root = JsonValue::parse(stat.json, "STAT reply");

  const JsonValue* totals = root.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->number_or("served", -1), kRequests);
  EXPECT_GT(root.number_or("qps", 0.0), 0.0);
  EXPECT_GT(root.number_or("uptime_s", 0.0), 0.0);

  // Every request landed inside the default 10 s window, and the five
  // stage histograms tile [recv, send]: their means sum to the end-to-end
  // mean (up to float noise from the ns -> us division).
  const JsonValue* req = root.find("request_us");
  const JsonValue* stages = root.find("stages");
  ASSERT_NE(req, nullptr);
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(req->number_or("count", -1), kRequests);
  double stage_mean_sum = 0.0;
  for (const char* key :
       {"decode_us", "queue_us", "assemble_us", "infer_us", "respond_us"}) {
    const JsonValue* stage = stages->find(key);
    ASSERT_NE(stage, nullptr) << key;
    EXPECT_EQ(stage->number_or("count", -1), kRequests) << key;
    stage_mean_sum += stage->number_or("mean", 0.0);
  }
  const double e2e_mean = req->number_or("mean", 0.0);
  EXPECT_GT(e2e_mean, 0.0);
  EXPECT_NEAR(stage_mean_sum, e2e_mean, 1e-6 * e2e_mean + 1e-3);
  EXPECT_GE(req->number_or("p99", 0.0), req->number_or("p50", 0.0));

  // SLO: a 10-second target means zero violations and zero burn.
  const JsonValue* slo = root.find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->number_or("violations", -1), 0);
  EXPECT_EQ(slo->number_or("ok", -1), kRequests);
  EXPECT_DOUBLE_EQ(slo->number_or("burn", -1), 0.0);

  // At 100% sampling every request left a span.
  const JsonValue* spans = root.find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->number_or("recorded", -1), kRequests);
  EXPECT_EQ(s.server->spans().recorded(), kRequests);
  EXPECT_EQ(s.server->stats().stat_requests, 1);

  // Drain writes the span log; it parses back with one line per request
  // and per-span stage tiling.
  s.server->drain_and_stop();
  const std::vector<obs::ParsedSpan> parsed = obs::parse_span_jsonl(span_log);
  ASSERT_EQ(parsed.size(), static_cast<std::size_t>(kRequests));
  for (const obs::ParsedSpan& p : parsed) {
    EXPECT_TRUE(p.ok);
    EXPECT_GE(p.batch, 1);
    EXPECT_NEAR(p.decode_us + p.queue_us + p.assemble_us + p.infer_us +
                    p.respond_us,
                p.e2e_us, 1e-6 * p.e2e_us + 1e-3);
  }
}

TEST(ServeServer, StatAnswersBeforeAnyInferenceTraffic) {
  // STAT bypasses the batcher entirely, so introspection works on an idle
  // daemon (and, by the same path, on an overloaded one): empty windows
  // report zero quantiles rather than erroring.
  MlpServer s({.num_workers = 1, .max_batch = 2, .batch_timeout_us = 100});
  TcpClient client("127.0.0.1", s.server->port(), 2000);
  const TcpClient::StatReply stat = client.stat(1);
  ASSERT_TRUE(stat.ok);
  const JsonValue root = JsonValue::parse(stat.json, "STAT reply");
  EXPECT_EQ(root.find("totals")->number_or("served", -1), 0);
  EXPECT_DOUBLE_EQ(root.number_or("qps", -1), 0.0);
  const JsonValue* req = root.find("request_us");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->number_or("count", -1), 0);
  EXPECT_DOUBLE_EQ(req->number_or("p99", -1), 0.0);
}

// --- deadlines, poison isolation, connection hygiene ------------------------

TEST(ServeServer, LegacyV1ClientRoundTripsByteCompatibly) {
  MlpServer s;
  Rng rng(17);
  const InferRequest req = random_request(5, 4, s.per_sample.numel(), rng);
  const std::vector<std::uint8_t> frame = frame_bytes(req, /*version=*/1);
  EXPECT_EQ(frame[5], 0);  // v1 on the wire: zero version byte
  // v1 payload layout: dims only, no deadline field.
  EXPECT_EQ(frame.size(), kHeaderBytes + 8 + req.data.size() * sizeof(float));

  const int fd = connect_raw(s.server->port());
  send_raw(fd, frame.data(), frame.size());
  // The daemon mirrors the request's version: the reply header must be
  // byte-identical to the pre-versioning format (zero version byte).
  std::uint8_t rraw[kHeaderBytes];
  ASSERT_TRUE(recv_exact(fd, rraw, kHeaderBytes));
  EXPECT_EQ(rraw[5], 0);
  const FrameHeader rh = decode_header(rraw);
  EXPECT_EQ(rh.version, 1u);
  ASSERT_EQ(rh.kind, FrameKind::kInferResponse);
  std::vector<std::uint8_t> rp(rh.payload_bytes);
  ASSERT_TRUE(recv_exact(fd, rp.data(), rp.size()));
  ::close(fd);

  const InferResponse resp = decode_response(rh.request_id, rp);
  const std::vector<float> want = reference_counts(s.model, s.per_sample, req);
  ASSERT_EQ(resp.spike_counts.size(), want.size());
  EXPECT_EQ(std::memcmp(resp.spike_counts.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
}

TEST(ServeServer, ExpiredDeadlineIsShedNotServed) {
  ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 1;
  cfg.batch_timeout_us = 0;
  // Wedge the single worker inside the first request's inference so the
  // second request's budget deterministically expires in the queue.
  cfg.poison_hook = [](const InferRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  };
  MlpServer s(cfg);
  const std::int64_t elems = s.per_sample.numel();
  const int port = s.server->port();

  std::thread wedge([&] {
    Rng rng(41);
    TcpClient c("127.0.0.1", port, 2000);
    const TcpClient::Reply r = c.roundtrip(random_request(1, 4, elems, rng));
    EXPECT_TRUE(r.ok) << r.error.message;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  Rng rng(42);
  TcpClient client("127.0.0.1", port, 2000);
  InferRequest late = random_request(2, 4, elems, rng);
  late.deadline_us = 5000;  // 5 ms << the ~170 ms of wedge left
  const TcpClient::Reply reply = client.roundtrip(late);
  wedge.join();
  ASSERT_FALSE(reply.ok);
  ASSERT_FALSE(reply.disconnected);
  EXPECT_EQ(reply.error.code, ErrorCode::kDeadlineExceeded);

  // The shed shows up in live STAT introspection (both counters were
  // bumped before the error frame we already received was written).
  const TcpClient::StatReply stat = client.stat(99);
  ASSERT_TRUE(stat.ok);
  const JsonValue root = JsonValue::parse(stat.json, "STAT reply");
  const JsonValue* deadline = root.find("deadline");
  ASSERT_NE(deadline, nullptr);
  EXPECT_EQ(deadline->number_or("requests", -1), 1);
  EXPECT_EQ(deadline->number_or("shed", -1), 1);

  // Counters are only final once the workers are joined: `served` is
  // bumped after the response write, so a drain must separate the last
  // reply from the stats assertions.
  s.server->drain_and_stop();
  const Server::Stats stats = s.server->stats();
  EXPECT_EQ(stats.deadline_requests, 1);
  EXPECT_EQ(stats.deadline_shed, 1);
  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(stats.admitted, stats.served + stats.dropped_responses +
                                stats.deadline_shed + stats.internal_errors);
}

TEST(ServeServer, PoisonRequestIsolatedWithoutKillingBatchmates) {
  ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 8;
  cfg.batch_timeout_us = 30000;  // 30 ms window: the three coalesce
  cfg.poison_hook = [](const InferRequest& r) {
    if (r.request_id == 666) throw Error("poison pill");
  };
  MlpServer s(cfg);
  const std::int64_t elems = s.per_sample.numel();
  const int port = s.server->port();

  constexpr std::uint64_t kIds[3] = {1, 666, 2};
  TcpClient::Reply replies[3];
  InferRequest requests[3];
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      Rng rng(300 + static_cast<std::uint64_t>(i));
      TcpClient c("127.0.0.1", port, 2000);
      requests[i] = random_request(kIds[i], 4, elems, rng);
      replies[i] = c.roundtrip(requests[i]);
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < 3; ++i) {
    if (kIds[i] == 666) {
      ASSERT_FALSE(replies[i].ok);
      ASSERT_FALSE(replies[i].disconnected);
      EXPECT_EQ(replies[i].error.code, ErrorCode::kInternalError);
      continue;
    }
    // Batchmates survive the poison AND keep bitwise parity: the isolation
    // re-run is the same kernel on the same window.
    ASSERT_TRUE(replies[i].ok) << replies[i].error.message;
    const std::vector<float> want =
        reference_counts(s.model, s.per_sample, requests[i]);
    EXPECT_EQ(std::memcmp(replies[i].response.spike_counts.data(), want.data(),
                          want.size() * sizeof(float)),
              0)
        << "batchmate " << kIds[i];
  }
  // The worker survived the poison: a fresh request still round-trips.
  Rng rng(310);
  TcpClient after("127.0.0.1", port, 2000);
  EXPECT_TRUE(after.roundtrip(random_request(7, 4, elems, rng)).ok);

  // Counters bump after the response write, so they are only final once
  // the workers are joined — drain before asserting them.
  s.server->drain_and_stop();
  const Server::Stats stats = s.server->stats();
  EXPECT_EQ(stats.internal_errors, 1);
  EXPECT_EQ(stats.served, 3);  // two surviving batchmates + the follow-up
  EXPECT_EQ(stats.admitted, stats.served + stats.dropped_responses +
                                stats.deadline_shed + stats.internal_errors);
}

TEST(ServeServer, SlowPeerIsCutBySendTimeoutNotServedForever) {
  ServerConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 0;
  cfg.send_timeout_ms = 150;
  cfg.sndbuf_bytes = 4096;  // wedge after a few KiB, not megabytes
  MlpServer s(cfg);
  const std::int64_t elems = s.per_sample.numel();
  const int port = s.server->port();

  // A peer that floods requests and never reads a byte of its responses.
  const int fd = connect_raw(port, /*rcvbuf=*/4096);
  Rng rng(51);
  InferRequest req = random_request(1, 2, elems, rng);
  const std::vector<std::uint8_t> frame = frame_bytes(req, kProtocolVersion);
  bool full = false;
  for (int i = 0; i < 2000 && !full; ++i) {
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t w = ::send(fd, frame.data() + off, frame.size() - off,
                               MSG_DONTWAIT | MSG_NOSIGNAL);
      if (w <= 0) {
        full = true;  // kernel buffers full (or the daemon already cut us)
        break;
      }
      off += static_cast<std::size_t>(w);
    }
  }

  // The bounded write path gives up on the wedged peer within the budget.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (s.server->stats().send_timeouts < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(s.server->stats().send_timeouts, 1);
  ::close(fd);

  // Only that connection paid: a healthy client still gets parity service
  // (retrying through any overload backlog the flood left behind).
  Rng rng2(52);
  TcpClient healthy("127.0.0.1", port, 2000);
  const InferRequest good = random_request(9, 4, elems, rng2);
  TcpClient::Reply reply;
  for (int attempt = 0; attempt < 200; ++attempt) {
    reply = healthy.roundtrip(good);
    if (reply.ok || reply.error.code != ErrorCode::kOverloaded) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(reply.ok) << reply.error.message;
  const std::vector<float> want =
      reference_counts(s.model, s.per_sample, good);
  EXPECT_EQ(std::memcmp(reply.response.spike_counts.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
}

// --- v3 streaming integration -----------------------------------------------

// One request's spike window reshaped to the [1, ...] layout the streaming
// reference session expects.
std::vector<Tensor> request_window(const Shape& per_sample,
                                   const InferRequest& r) {
  std::vector<std::int64_t> dims{1};
  for (std::int64_t d : per_sample.dims()) dims.push_back(d);
  const std::int64_t elems = per_sample.numel();
  std::vector<Tensor> window;
  for (std::uint32_t t = 0; t < r.num_steps; ++t) {
    Tensor x{Shape(dims)};
    std::memcpy(x.data(), r.data.data() + t * elems,
                static_cast<std::size_t>(elems) * sizeof(float));
    window.push_back(std::move(x));
  }
  return window;
}

TEST(ServeStream, OpenStepCloseMatchesDirectStreamStateBitwise) {
  // The streaming parity contract end-to-end: every chunk's served counts
  // equal the same chunk fed to a local StreamState, and the close totals
  // equal its lifetime cumulative counts — the daemon's batching, queueing,
  // and state management must be invisible in the numbers.
  MlpServer s;
  const std::int64_t elems = s.per_sample.numel();
  TcpClient client("127.0.0.1", s.server->port(), 2000);
  ASSERT_TRUE(client.stream_open(42, 1).ok);

  infer::InferenceSession ref(s.model, {.max_batch = 1});
  infer::StreamState state = ref.make_stream();
  infer::StreamState* ptr = &state;
  Rng rng(0x5eed);
  for (std::uint32_t chunk = 0; chunk < 3; ++chunk) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const InferRequest req =
        random_request(100 + chunk, 2 + chunk, elems, rng);
    const TcpClient::Reply reply = client.stream_step(42, req);
    ASSERT_TRUE(reply.ok) << reply.error.message;
    const auto want = ref.run(&ptr, 1, request_window(s.per_sample, req));
    ASSERT_EQ(reply.response.spike_counts.size(),
              static_cast<std::size_t>(want.spike_counts.numel()));
    EXPECT_EQ(std::memcmp(reply.response.spike_counts.data(),
                          want.spike_counts.data(),
                          reply.response.spike_counts.size() * sizeof(float)),
              0)
        << "served chunk counts differ from a direct StreamState step";
  }

  const TcpClient::StreamCloseResult closed = client.stream_close(42, 9);
  ASSERT_TRUE(closed.ok) << closed.error.message;
  EXPECT_EQ(closed.totals.stream_id, 42u);
  EXPECT_EQ(closed.totals.steps_done,
            static_cast<std::uint64_t>(state.steps_done()));
  ASSERT_EQ(closed.totals.cumulative_counts.size(),
            state.cumulative_counts().size());
  EXPECT_EQ(std::memcmp(closed.totals.cumulative_counts.data(),
                        state.cumulative_counts().data(),
                        state.cumulative_counts().size() * sizeof(float)),
            0)
      << "close totals differ from the local stream's lifetime counts";
}

TEST(ServeStream, LifecycleErrorsAreBadRequests) {
  MlpServer s;
  const std::int64_t elems = s.per_sample.numel();
  TcpClient client("127.0.0.1", s.server->port(), 2000);
  Rng rng(77);
  const InferRequest req = random_request(1, 2, elems, rng);

  // Stepping a stream that was never opened is a bad request, not a crash
  // and not a silent fresh stream.
  TcpClient::Reply r = client.stream_step(7, req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kBadRequest);

  // Stream id 0 is the plain-request sentinel: the client-side builder
  // refuses to even encode it...
  EXPECT_THROW(client.stream_open(0), InvalidArgument);
  // ...and a peer that hand-crafts the frame anyway gets a bad-request.
  {
    const int fd = connect_raw(s.server->port());
    std::vector<std::uint8_t> zero_id(kHeaderBytes + 8, 0);
    FrameHeader h;
    h.kind = FrameKind::kStreamOpen;
    h.version = kProtocolVersion;
    h.request_id = 3;
    h.payload_bytes = 8;
    encode_header(h, zero_id.data());
    send_raw(fd, zero_id.data(), zero_id.size());
    FrameHeader back;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(recv_frame_raw(fd, back, payload));
    EXPECT_EQ(back.kind, FrameKind::kError);
    EXPECT_EQ(decode_error(3, payload).code, ErrorCode::kBadRequest);
    ::close(fd);
  }

  ASSERT_TRUE(client.stream_open(7).ok);
  TcpClient::StreamAck ack = client.stream_open(7);  // double open
  ASSERT_FALSE(ack.ok);
  EXPECT_EQ(ack.error.code, ErrorCode::kBadRequest);

  ASSERT_TRUE(client.stream_step(7, req).ok);
  ASSERT_TRUE(client.stream_close(7).ok);

  // Step-after-close: the id is gone, so the step bounces as bad-request.
  r = client.stream_step(7, req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, ErrorCode::kBadRequest);
  const TcpClient::StreamCloseResult closed = client.stream_close(7);
  ASSERT_FALSE(closed.ok);
  EXPECT_EQ(closed.error.code, ErrorCode::kBadRequest);

  s.server->drain_and_stop();
  const Server::Stats stats = s.server->stats();
  EXPECT_EQ(stats.streams_opened, 1);
  EXPECT_EQ(stats.streams_closed, 1);
  EXPECT_EQ(stats.stream_steps, 1);
  EXPECT_EQ(stats.admitted, stats.served + stats.dropped_responses +
                                stats.deadline_shed + stats.internal_errors +
                                stats.stream_orphan_steps);
}

TEST(ServeStream, OpenPastBoundWithoutSpillDirIsOverloaded) {
  ServerConfig cfg;
  cfg.max_live_streams = 2;  // no stream_checkpoint_dir: a hard bound
  MlpServer s(cfg);
  TcpClient client("127.0.0.1", s.server->port(), 2000);
  ASSERT_TRUE(client.stream_open(1).ok);
  ASSERT_TRUE(client.stream_open(2).ok);
  const TcpClient::StreamAck ack = client.stream_open(3);
  ASSERT_FALSE(ack.ok);
  EXPECT_EQ(ack.error.code, ErrorCode::kOverloaded);
  // Closing one frees the slot.
  ASSERT_TRUE(client.stream_close(2).ok);
  EXPECT_TRUE(client.stream_open(3).ok);
}

TEST(ServeStream, DrainWithOpenStreamsCheckpointsEachExactlyOnce) {
  const std::string dir = ::testing::TempDir() + "/serve_stream_drain";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServerConfig cfg;
  cfg.max_live_streams = 64;
  cfg.stream_checkpoint_dir = dir;
  MlpServer s(cfg);
  const std::int64_t elems = s.per_sample.numel();
  TcpClient client("127.0.0.1", s.server->port(), 2000);
  Rng rng(91);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(client.stream_open(id).ok);
    ASSERT_TRUE(client.stream_step(id, random_request(id, 3, elems, rng)).ok);
  }
  // Stream 5 closes cleanly before the drain; 1-4 are still open.
  ASSERT_TRUE(client.stream_close(5).ok);

  s.server->drain_and_stop();

  // Each still-open stream's state lands in exactly one STK2 spill file;
  // the closed stream leaves nothing behind.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    EXPECT_TRUE(e.path().filename().string().rfind("stream-", 0) == 0)
        << e.path();
    ++files;
  }
  EXPECT_EQ(files, 4u);
  const Server::Stats stats = s.server->stats();
  EXPECT_EQ(stats.streams_opened, 5);
  EXPECT_EQ(stats.streams_closed, 1);
  EXPECT_EQ(stats.streams_checkpointed, 4);
  EXPECT_EQ(stats.streams_evicted, 0);
  EXPECT_EQ(stats.stream_steps, 5);
  // Drain is NOT a disconnect: the still-connected client's streams were
  // checkpointed for resumption, never reaped as orphans.
  EXPECT_EQ(stats.stream_auto_closed, 0);
}

TEST(ServeStream, DisconnectWithoutCloseReapsOrphanedStreams) {
  // A client that vanishes without STREAM_CLOSE must not leak its streams:
  // with no checkpoint dir they would pin max_live capacity forever, and
  // eventually every open on the daemon gets kOverloaded.  The reader
  // closes its connection's streams on the way out.
  ServerConfig cfg;
  cfg.max_live_streams = 2;  // hard bound: a leak is immediately visible
  MlpServer s(cfg);
  {
    TcpClient client("127.0.0.1", s.server->port(), 2000);
    ASSERT_TRUE(client.stream_open(1).ok);
    ASSERT_TRUE(client.stream_open(2).ok);
  }  // destructor drops the connection with both streams open

  // The reader reaps asynchronously after it sees EOF; poll briefly.
  Server::Stats stats;
  for (int i = 0; i < 500; ++i) {
    stats = s.server->stats();
    if (stats.stream_auto_closed >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(stats.streams_opened, 2);
  EXPECT_EQ(stats.streams_closed, 2);
  EXPECT_EQ(stats.stream_auto_closed, 2);

  // The capacity the orphans pinned is usable again.
  TcpClient again("127.0.0.1", s.server->port(), 2000);
  EXPECT_TRUE(again.stream_open(1).ok);
  EXPECT_TRUE(again.stream_open(2).ok);
}

// --- fault injection --------------------------------------------------------

TEST(ServeFault, SpecParsesValidatesAndRoundTrips) {
  const FaultSpec spec =
      FaultSpec::parse("seed=42,p_partial=0.3,p_disconnect=0.01,delay_ms=7");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.p_partial, 0.3);
  EXPECT_DOUBLE_EQ(spec.p_disconnect, 0.01);
  EXPECT_EQ(spec.delay_ms, 7);
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(FaultSpec{}.enabled());
  EXPECT_FALSE(FaultSpec::parse("").enabled());

  // describe() is canonical and round-trippable.
  const FaultSpec back = FaultSpec::parse(spec.describe());
  EXPECT_EQ(back.describe(), spec.describe());

  EXPECT_THROW(FaultSpec::parse("p_bogus=0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("p_partial=1.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("p_partial=-0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("seed=banana"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("p_partial"), InvalidArgument);
}

/// Replays a fixed frame script straight through FaultInjectingConnections
/// over socketpairs — single-threaded, with every inbound frame fully
/// buffered before the injector reads it — and returns the fired-fault
/// schedule.  Scripting matters: over real TCP the kernel's own short
/// writes change how many transport_send calls (and thus RNG draws) a
/// frame costs, so the schedule would not replay byte-for-byte.
std::string scripted_fault_schedule(const std::string& spec_text) {
  const FaultSpec spec = FaultSpec::parse(spec_text);
  FaultLog log;
  for (std::uint64_t conn = 0; conn < 3; ++conn) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      ADD_FAILURE() << "socketpair: " << std::strerror(errno);
      return "";
    }
    FaultInjectingConnection c(sv[0], "scripted", spec, conn, &log);
    for (int i = 0; i < 12; ++i) {
      Rng rng(1000 * (conn + 1) + static_cast<std::uint64_t>(i));
      const InferRequest req =
          random_request(static_cast<std::uint64_t>(i + 1), 2, 16, rng);
      const std::vector<std::uint8_t> frame =
          frame_bytes(req, kProtocolVersion);
      std::size_t off = 0;
      while (off < frame.size()) {
        const ssize_t w = ::send(sv[1], frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (w <= 0) break;
        off += static_cast<std::size_t>(w);
      }
      FrameHeader h;
      std::vector<std::uint8_t> payload;
      bool alive = false;
      try {
        alive = c.read_frame(h, payload, /*wake_fd=*/-1);
      } catch (const Error&) {
        // Corrupted header: the daemon would drop the connection.
      }
      if (alive)
        alive = c.write_frame(FrameKind::kInferResponse, req.request_id,
                              payload);
      // Drain whatever reached the peer so later writes never block.
      std::uint8_t sink[4096];
      while (::recv(sv[1], sink, sizeof sink, MSG_DONTWAIT) > 0) {
      }
      if (!alive) break;  // disconnect or corruption killed this connection
    }
    ::close(sv[1]);
  }
  return log.dump();
}

TEST(ServeFault, SameSeedReproducesTheSameSchedule) {
  const std::string spec =
      "seed=11,p_delay=0.25,delay_ms=1,p_read_stall=0.2,p_write_stall=0.2,"
      "stall_ms=1,p_partial=0.5,p_corrupt=0.1,p_disconnect=0.1";
  const std::string a = scripted_fault_schedule(spec);
  const std::string b = scripted_fault_schedule(spec);
  EXPECT_FALSE(a.empty()) << "no faults fired: the schedule test is vacuous";
  EXPECT_EQ(a, b) << "same seed, same traffic, different fault schedule";
  // A different seed produces a different schedule (overwhelmingly).
  const std::string c = scripted_fault_schedule(
      "seed=12,p_delay=0.25,delay_ms=1,p_read_stall=0.2,p_write_stall=0.2,"
      "stall_ms=1,p_partial=0.5,p_corrupt=0.1,p_disconnect=0.1");
  EXPECT_NE(a, c);
}

TEST(ServeFault, ChaosNeverBreaksParityGivenRetries) {
  ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.batch_timeout_us = 500;
  cfg.fault_spec =
      "seed=3,p_delay=0.1,delay_ms=1,p_partial=0.4,p_corrupt=0.05,"
      "p_disconnect=0.05";
  MlpServer s(cfg);
  const std::int64_t elems = s.per_sample.numel();
  const int port = s.server->port();

  Rng rng(61);
  std::unique_ptr<TcpClient> client;
  int completed = 0;
  for (int i = 0; i < 25; ++i) {
    const InferRequest req =
        random_request(static_cast<std::uint64_t>(i + 1), 4, elems, rng);
    for (int attempt = 0; attempt < 12; ++attempt) {
      if (client == nullptr || !client->connected())
        client = std::make_unique<TcpClient>("127.0.0.1", port, 2000);
      const TcpClient::Reply reply = client->roundtrip(req);
      if (reply.disconnected) {
        client.reset();  // mid-frame fault: reconnect and retry
        continue;
      }
      if (!reply.ok) continue;
      // THE chaos invariant: a response that arrives is bitwise correct,
      // whatever partial writes and delays it survived.
      const std::vector<float> want =
          reference_counts(s.model, s.per_sample, req);
      ASSERT_EQ(reply.response.spike_counts.size(), want.size());
      ASSERT_EQ(std::memcmp(reply.response.spike_counts.data(), want.data(),
                            want.size() * sizeof(float)),
                0)
          << "request " << i << " lost parity under faults";
      ++completed;
      break;
    }
  }
  EXPECT_EQ(completed, 25);
  EXPECT_GT(s.server->fault_log().size(), 0u);

  s.server->drain_and_stop();
  const Server::Stats stats = s.server->stats();
  EXPECT_EQ(stats.admitted, stats.served + stats.dropped_responses +
                                stats.deadline_shed + stats.internal_errors);
}

// --- drain x deadlines (forked: the SIGTERM path end to end) ----------------

TEST(ServeServer, SigtermDrainShedsExpiredAndExitsZero) {
  // install_shutdown_request() arms process-global state, so the daemon
  // side runs in a fork (same pattern as the cooperative-shutdown tests in
  // test_signal_flush.cpp); the gtest parent plays the clients.
  int ready[2];
  ASSERT_EQ(pipe(ready), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(ready[0]);
    obs::install_shutdown_request();
    const auto net = snn::make_snn_mlp({});
    const Shape per_sample{snn::MlpConfig{}.in_features};
    const auto model = infer::CompiledModel::compile(*net, per_sample);
    ServerConfig cfg;
    cfg.port = 0;
    cfg.num_workers = 1;
    cfg.max_batch = 1;
    cfg.batch_timeout_us = 0;
    // Wedge the worker so tight-deadline requests are still queued (and
    // expired) when SIGTERM lands.
    cfg.poison_hook = [](const InferRequest&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    };
    Server server(model, cfg);
    server.start();
    const std::uint32_t port = static_cast<std::uint32_t>(server.port());
    if (write(ready[1], &port, sizeof port) != sizeof port) _exit(90);
    while (!obs::shutdown_requested()) {
      struct pollfd pfd = {obs::shutdown_fd(), POLLIN, 0};
      poll(&pfd, 1, 1000);
    }
    server.drain_and_stop();
    const Server::Stats st = server.stats();
    if (server.running()) _exit(91);
    if (st.admitted < 5) _exit(92);
    if (st.deadline_shed < 4) _exit(93);
    // Exactly-once accounting: every admitted request left through served,
    // dropped, shed, or internal-error — nothing vanished, nothing doubled.
    if (st.admitted != st.served + st.dropped_responses + st.deadline_shed +
                           st.internal_errors)
      _exit(94);
    _exit(0);
  }
  close(ready[1]);
  std::uint32_t port = 0;
  ASSERT_EQ(read(ready[0], &port, sizeof port),
            static_cast<ssize_t>(sizeof port));
  close(ready[0]);
  const std::int64_t elems = Shape{snn::MlpConfig{}.in_features}.numel();

  // One no-deadline request wedges the single worker for ~400 ms...
  std::thread wedge([&] {
    Rng rng(71);
    TcpClient c("127.0.0.1", static_cast<int>(port), 2000);
    const TcpClient::Reply r = c.roundtrip(random_request(1, 4, elems, rng));
    EXPECT_TRUE(r.ok || r.disconnected);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...while four 1 ms-deadline requests pile up behind it and expire.
  Rng rng(72);
  const int fd = connect_raw(static_cast<int>(port));
  for (std::uint64_t id = 2; id <= 5; ++id) {
    InferRequest req = random_request(id, 4, elems, rng);
    req.deadline_us = 1000;
    const std::vector<std::uint8_t> frame = frame_bytes(req, kProtocolVersion);
    send_raw(fd, frame.data(), frame.size());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(kill(pid, SIGTERM), 0);

  // The drain answers every queued request: four deadline-exceeded sheds
  // arrive before the daemon closes the connection.
  int sheds = 0;
  FrameHeader rh;
  std::vector<std::uint8_t> rp;
  while (recv_frame_raw(fd, rh, rp)) {
    if (rh.kind == FrameKind::kError &&
        decode_error(rh.request_id, rp).code == ErrorCode::kDeadlineExceeded)
      ++sheds;
  }
  EXPECT_EQ(sheds, 4);
  ::close(fd);
  wedge.join();

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "daemon child failed invariant check " << WEXITSTATUS(status);
}

}  // namespace
}  // namespace spiketune::serve
