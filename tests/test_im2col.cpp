// im2col/col2im vs direct convolution, plus gradcheck self-tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "tensor/gemm.h"
#include "tensor/gradcheck.h"
#include "tensor/im2col.h"
#include "tensor/tensor_ops.h"

namespace spiketune {
namespace {

TEST(ConvGeom, OutputDims) {
  EXPECT_EQ(conv_out_dim(32, 3, 0, 1), 30);
  EXPECT_EQ(conv_out_dim(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_dim(5, 5, 0, 1), 1);
  EXPECT_THROW(conv_out_dim(2, 5, 0, 1), InvalidArgument);
}

TEST(Im2col, IdentityKernel) {
  // 1x1 kernel: columns == flattened image.
  ConvGeom g{2, 3, 3, 1, 1, 0, 0, 1, 1};
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), cols.data());
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2col, KnownPatch) {
  // 1 channel 3x3 image, 2x2 kernel -> 4 rows x 4 cols.
  ConvGeom g{1, 3, 3, 2, 2, 0, 0, 1, 1};
  const std::vector<float> img{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> cols(16);
  im2col(g, img.data(), cols.data());
  // Row 0 is kernel tap (0,0): top-left value of each window.
  EXPECT_EQ(cols[0], 0.0f);
  EXPECT_EQ(cols[1], 1.0f);
  EXPECT_EQ(cols[2], 3.0f);
  EXPECT_EQ(cols[3], 4.0f);
  // Row 3 is kernel tap (1,1): bottom-right value of each window.
  EXPECT_EQ(cols[12], 4.0f);
  EXPECT_EQ(cols[15], 8.0f);
}

TEST(Im2col, PaddingReadsZero) {
  ConvGeom g{1, 2, 2, 3, 3, 1, 1, 1, 1};
  const std::vector<float> img{1, 2, 3, 4};
  std::vector<float> cols(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), cols.data());
  // Kernel tap (0,0) for output (0,0) reads img(-1,-1) == 0.
  EXPECT_EQ(cols[0], 0.0f);
  // Kernel tap (1,1) (center) for output (0,0) reads img(0,0) == 1.
  const std::int64_t center_row = 4;  // taps ordered (kh,kw): (1,1) is 4th
  EXPECT_EQ(cols[static_cast<std::size_t>(center_row * g.col_cols())], 1.0f);
}

// im2col + GEMM must equal a naive direct convolution.
TEST(Im2col, GemmConvMatchesDirect) {
  const std::int64_t C = 3, H = 7, W = 6, OC = 4, K = 3;
  ConvGeom g{C, H, W, K, K, 0, 0, 1, 1};
  Rng rng(21);
  std::vector<float> img(static_cast<std::size_t>(C * H * W));
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> weight(static_cast<std::size_t>(OC * C * K * K));
  for (auto& v : weight) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::vector<float> cols(static_cast<std::size_t>(g.col_rows() * oh * ow));
  im2col(g, img.data(), cols.data());
  std::vector<float> out(static_cast<std::size_t>(OC * oh * ow), 0.0f);
  gemm(OC, oh * ow, g.col_rows(), 1.0f, weight.data(), cols.data(), 0.0f,
       out.data());

  for (std::int64_t oc = 0; oc < OC; ++oc) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < C; ++c)
          for (std::int64_t kh = 0; kh < K; ++kh)
            for (std::int64_t kw = 0; kw < K; ++kw)
              acc += static_cast<double>(
                         img[(c * H + y + kh) * W + x + kw]) *
                     weight[((oc * C + c) * K + kh) * K + kw];
        EXPECT_NEAR(out[(oc * oh + y) * ow + x], acc, 1e-4)
            << oc << "," << y << "," << x;
      }
    }
  }
}

// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Im2col, Col2ImIsAdjoint) {
  ConvGeom g{2, 5, 4, 3, 3, 1, 1, 1, 1};
  Rng rng(31);
  const std::int64_t img_n = g.channels * g.height * g.width;
  const std::int64_t col_n = g.col_rows() * g.col_cols();
  std::vector<float> x(static_cast<std::size_t>(img_n));
  std::vector<float> y(static_cast<std::size_t>(col_n));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> ax(static_cast<std::size_t>(col_n));
  im2col(g, x.data(), ax.data());
  std::vector<float> aty(static_cast<std::size_t>(img_n), 0.0f);
  col2im(g, y.data(), aty.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < col_n; ++i)
    lhs += static_cast<double>(ax[static_cast<std::size_t>(i)]) *
           y[static_cast<std::size_t>(i)];
  for (std::int64_t i = 0; i < img_n; ++i)
    rhs += static_cast<double>(x[static_cast<std::size_t>(i)]) *
           aty[static_cast<std::size_t>(i)];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(GradCheck, AcceptsCorrectGradient) {
  // f(x) = sum(x^2) -> grad = 2x.
  Tensor x(Shape{5}, {1, -2, 3, 0.5f, -0.25f});
  Tensor grad = ops::scale(x, 2.0f);
  auto f = [](const Tensor& t) {
    double s = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i)
      s += static_cast<double>(t[i]) * t[i];
    return s;
  };
  const auto res = check_gradient(f, x, grad, 1e-3);
  EXPECT_TRUE(res.ok(1e-3, 1e-5)) << res.max_rel_error;
}

TEST(GradCheck, RejectsWrongGradient) {
  Tensor x(Shape{3}, {1, 2, 3});
  Tensor wrong = Tensor::full(Shape{3}, 100.0f);
  auto f = [](const Tensor& t) { return static_cast<double>(ops::sum(t)); };
  const auto res = check_gradient(f, x, wrong, 1e-3);
  EXPECT_FALSE(res.ok(1e-2, 1e-4));
  EXPECT_GE(res.worst_index, 0);
}

}  // namespace
}  // namespace spiketune
