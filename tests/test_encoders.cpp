// Spike encoder tests: statistics, determinism, binary-ness.
#include <gtest/gtest.h>

#include "core/error.h"
#include "data/encoders.h"
#include "tensor/tensor_ops.h"

namespace spiketune::data {
namespace {

Tensor constant_batch(float value, Shape shape = Shape{2, 1, 4, 4}) {
  return Tensor::full(std::move(shape), value);
}

TEST(RateEncoder, MeanMatchesIntensity) {
  RateEncoder enc(123);
  const Tensor batch = constant_batch(0.3f, Shape{4, 1, 8, 8});
  const auto steps = enc.encode(batch, 200, 0);
  double total = 0.0;
  double n = 0.0;
  for (const auto& s : steps) {
    total += ops::sum(s);
    n += static_cast<double>(s.numel());
  }
  EXPECT_NEAR(total / n, 0.3, 0.02);
}

TEST(RateEncoder, OutputIsBinary) {
  RateEncoder enc;
  const Tensor batch = constant_batch(0.5f);
  for (const auto& s : enc.encode(batch, 10, 1)) {
    for (std::int64_t i = 0; i < s.numel(); ++i)
      EXPECT_TRUE(s[i] == 0.0f || s[i] == 1.0f);
  }
  EXPECT_TRUE(enc.binary());
}

TEST(RateEncoder, ExtremesAreDeterministic) {
  RateEncoder enc;
  const auto zeros = enc.encode(constant_batch(0.0f), 5, 0);
  const auto ones = enc.encode(constant_batch(1.0f), 5, 0);
  for (const auto& s : zeros) EXPECT_EQ(ops::sum(s), 0.0f);
  for (const auto& s : ones)
    EXPECT_EQ(ops::sum(s), static_cast<float>(s.numel()));
}

TEST(RateEncoder, GainScalesProbability) {
  RateEncoder enc(7, /*gain=*/0.5f);
  const auto steps = enc.encode(constant_batch(1.0f, Shape{4, 1, 8, 8}), 100, 0);
  double total = 0.0, n = 0.0;
  for (const auto& s : steps) {
    total += ops::sum(s);
    n += static_cast<double>(s.numel());
  }
  EXPECT_NEAR(total / n, 0.5, 0.03);
}

TEST(RateEncoder, StreamsDecorrelate) {
  RateEncoder enc(9);
  const Tensor batch = constant_batch(0.5f);
  const auto a = enc.encode(batch, 1, 0);
  const auto b = enc.encode(batch, 1, 1);
  int diff = 0;
  for (std::int64_t i = 0; i < a[0].numel(); ++i)
    diff += (a[0][i] != b[0][i]);
  EXPECT_GT(diff, 0);
}

TEST(RateEncoder, SameStreamReproduces) {
  RateEncoder e1(9), e2(9);
  const Tensor batch = constant_batch(0.5f);
  const auto a = e1.encode(batch, 3, 5);
  const auto b = e2.encode(batch, 3, 5);
  for (std::size_t t = 0; t < a.size(); ++t)
    for (std::int64_t i = 0; i < a[t].numel(); ++i)
      EXPECT_EQ(a[t][i], b[t][i]);
}

TEST(DirectEncoder, RepeatsAnalogInput) {
  DirectEncoder enc;
  const Tensor batch = constant_batch(0.37f);
  const auto steps = enc.encode(batch, 4, 0);
  ASSERT_EQ(steps.size(), 4u);
  for (const auto& s : steps)
    for (std::int64_t i = 0; i < s.numel(); ++i) EXPECT_EQ(s[i], 0.37f);
  EXPECT_FALSE(enc.binary());
}

TEST(LatencyEncoder, OneSpikePerActivePixel) {
  LatencyEncoder enc;
  Tensor batch(Shape{1, 1, 2, 2}, {1.0f, 0.5f, 0.25f, 0.0f});
  const auto steps = enc.encode(batch, 8, 0);
  std::vector<int> fire_count(4, 0);
  for (const auto& s : steps)
    for (int i = 0; i < 4; ++i) fire_count[i] += (s[i] != 0.0f);
  EXPECT_EQ(fire_count[0], 1);
  EXPECT_EQ(fire_count[1], 1);
  EXPECT_EQ(fire_count[2], 1);
  EXPECT_EQ(fire_count[3], 0);  // below threshold: silent
}

TEST(LatencyEncoder, BrighterFiresEarlier) {
  LatencyEncoder enc;
  Tensor batch(Shape{1, 1, 1, 3}, {1.0f, 0.6f, 0.2f});
  const auto steps = enc.encode(batch, 10, 0);
  auto first_spike = [&](int idx) {
    for (std::size_t t = 0; t < steps.size(); ++t)
      if (steps[t][idx] != 0.0f) return static_cast<int>(t);
    return -1;
  };
  EXPECT_EQ(first_spike(0), 0);  // max intensity -> immediately
  EXPECT_LT(first_spike(0), first_spike(1));
  EXPECT_LT(first_spike(1), first_spike(2));
}

TEST(MakeEncoder, FactoryNames) {
  EXPECT_EQ(make_encoder("rate")->name(), "rate");
  EXPECT_EQ(make_encoder("direct")->name(), "direct");
  EXPECT_EQ(make_encoder("latency")->name(), "latency");
  EXPECT_THROW(make_encoder("poisson2"), InvalidArgument);
}

TEST(Encoders, RejectNonPositiveSteps) {
  RateEncoder enc;
  EXPECT_THROW(enc.encode(constant_batch(0.5f), 0, 0), InvalidArgument);
}

}  // namespace
}  // namespace spiketune::data
