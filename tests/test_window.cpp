// Sliding-window aggregate tests (obs/window.h): epoch-rollover exactness
// against a serial reference driven by a synthetic clock, stalled-writer
// drop accounting, rate math over completed epochs, and a concurrent
// writers-vs-reader hammer.  Plus the request-span ring (obs/spans.h):
// sampling gate, ring retention, and the JSONL write/parse round-trip with
// its derived stage durations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "core/error.h"
#include "obs/spans.h"
#include "obs/window.h"

namespace spiketune::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- WindowedHistogram ------------------------------------------------------

TEST(WindowedHistogram, EmptyWindowReportsZeros) {
  WindowedHistogram h({.epoch_ns = 1000, .epochs = 4});
  const LogHistogram merged = h.merged_at(123456);
  EXPECT_EQ(merged.count(), 0);
  EXPECT_EQ(merged.quantile(0.5), 0.0);
  EXPECT_EQ(merged.quantile(0.99), 0.0);
  EXPECT_EQ(merged.mean_or(-1.0), -1.0);
  EXPECT_EQ(h.dropped_late(), 0);
}

TEST(WindowedHistogram, RolloverMatchesSerialReferenceExactly) {
  constexpr std::uint64_t kEpochNs = 1000;
  constexpr int kEpochs = 4;
  WindowedHistogram h({.epoch_ns = kEpochNs, .epochs = kEpochs});

  // Serial reference: one plain LogHistogram per epoch, merged by hand over
  // the same [cur - epochs + 1, cur] range the windowed structure uses.
  std::map<std::uint64_t, LogHistogram> by_epoch;
  auto reference_at = [&](std::uint64_t now_ns) {
    const std::uint64_t cur = now_ns / kEpochNs;
    const std::uint64_t lo = cur + 1 >= kEpochs ? cur + 1 - kEpochs : 0;
    LogHistogram merged;
    for (const auto& [epoch, hist] : by_epoch)
      if (epoch >= lo && epoch <= cur) merged.merge(hist);
    return merged;
  };

  // A deterministic value stream spread over 12 epochs — three full window
  // lengths, so every slot gets recycled at least once.
  std::uint64_t now = 0;
  for (int i = 0; i < 240; ++i) {
    now += 47;  // ~21 samples per epoch, never landing on an epoch edge
    const double v = 0.5 + static_cast<double>((i * 37) % 1000);
    h.record_at(v, now);
    by_epoch[now / kEpochNs].record(v);

    if (i % 17 == 0) {
      const LogHistogram got = h.merged_at(now);
      const LogHistogram want = reference_at(now);
      ASSERT_EQ(got.count(), want.count()) << "at now=" << now;
      ASSERT_DOUBLE_EQ(got.sum(), want.sum()) << "at now=" << now;
      ASSERT_EQ(got.min_seen(), want.min_seen()) << "at now=" << now;
      ASSERT_EQ(got.max_seen(), want.max_seen()) << "at now=" << now;
      ASSERT_EQ(got.buckets(), want.buckets()) << "at now=" << now;
    }
  }
  // Nothing was dropped: the synthetic clock only moves forward.
  EXPECT_EQ(h.dropped_late(), 0);

  // Far in the future the window is empty again.
  EXPECT_EQ(h.merged_at(now + 100 * kEpochNs * kEpochs).count(), 0);
}

TEST(WindowedHistogram, StalledWriterDropsInsteadOfCorrupting) {
  // epochs=2 -> 4 slots; epoch 0 and epoch 4 share a slot.
  WindowedHistogram h({.epoch_ns = 1000, .epochs = 2});
  h.record_at(1.0, 500);            // epoch 0
  h.record_at(2.0, 4 * 1000 + 1);   // epoch 4 recycles epoch 0's slot
  EXPECT_EQ(h.dropped_late(), 0);

  h.record_at(3.0, 700);  // a writer stalled since epoch 0: slot is gone
  EXPECT_EQ(h.dropped_late(), 1);
  // The late sample is absent everywhere; the fresh epoch is intact.
  const LogHistogram merged = h.merged_at(4 * 1000 + 2);
  EXPECT_EQ(merged.count(), 1);
  EXPECT_EQ(merged.max_seen(), 2.0);
}

TEST(WindowedHistogram, ConcurrentWritersLoseNothing) {
  // Wide window + real clock: every sample written lands inside it, so the
  // final merged count must equal the total pushed (no torn slots).
  WindowedHistogram h({.epoch_ns = 1'000'000, .epochs = 60});
  WindowedRate r({.epoch_ns = 1'000'000, .epochs = 60});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.merged();
      (void)r.per_second();
      (void)r.total_in_window();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(t * kPerThread + i % 97) + 1.0);
        r.add();
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(h.merged().count() + h.dropped_late(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(r.total_in_window() + r.dropped_late(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
  // A 60 ms stall inside record() would be required to drop anything here.
  EXPECT_EQ(h.dropped_late(), 0);
}

// --- WindowedRate -----------------------------------------------------------

TEST(WindowedRate, PerSecondAveragesCompletedEpochsOnly) {
  constexpr std::uint64_t kSecond = 1'000'000'000;
  WindowedRate r({.epoch_ns = kSecond, .epochs = 5});
  for (std::uint64_t e = 0; e < 5; ++e)
    r.add_at(10, e * kSecond + kSecond / 2);

  // At t=5s, epochs 0..4 are complete: 50 events over 5 s.
  EXPECT_DOUBLE_EQ(r.per_second_at(5 * kSecond), 10.0);
  // A partial current epoch never drags the rate down: 2 events early in
  // epoch 5 leave the completed-epoch average untouched.
  r.add_at(2, 5 * kSecond + 1);
  EXPECT_DOUBLE_EQ(r.per_second_at(5 * kSecond + 2), 10.0);
  // ...but the in-window total does include the partial epoch.
  EXPECT_EQ(r.total_in_window_at(5 * kSecond + 2), 42);

  // One window later everything has aged out.
  EXPECT_DOUBLE_EQ(r.per_second_at(20 * kSecond), 0.0);
  EXPECT_EQ(r.total_in_window_at(20 * kSecond), 0);
}

TEST(WindowedRate, EarlyLifeFallbackUsesElapsedFraction) {
  constexpr std::uint64_t kSecond = 1'000'000'000;
  WindowedRate r({.epoch_ns = kSecond, .epochs = 5});
  r.add_at(4, kSecond / 4);
  // No epoch has completed yet: 4 events over 0.5 s elapsed.
  EXPECT_DOUBLE_EQ(r.per_second_at(kSecond / 2), 8.0);
}

// --- SpanRecorder -----------------------------------------------------------

TEST(SpanRecorder, SamplingGateIsModuloOnServerId) {
  const SpanRecorder every(16, 1);
  const SpanRecorder fourth(16, 4);
  const SpanRecorder off(16, 0);
  EXPECT_TRUE(every.sampled(1));
  EXPECT_TRUE(every.sampled(2));
  EXPECT_TRUE(fourth.sampled(4));
  EXPECT_TRUE(fourth.sampled(8));
  EXPECT_FALSE(fourth.sampled(5));
  EXPECT_FALSE(off.sampled(4));
  EXPECT_FALSE(off.sampled(0));
}

TEST(SpanRecorder, RingKeepsMostRecentOldestFirst) {
  SpanRecorder rec(4, 1);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    RequestSpan s;
    s.server_id = id;
    rec.record(s);
  }
  EXPECT_EQ(rec.recorded(), 10);
  const std::vector<RequestSpan> kept = rec.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(kept[i].server_id, 7 + i);
}

TEST(SpanRecorder, JsonlRoundTripDerivesStageDurations) {
  const std::string path = temp_path("spans_roundtrip.jsonl");
  std::remove(path.c_str());

  SpanRecorder rec(8, 1);
  RequestSpan s;
  s.server_id = 3;
  s.client_id = 99;
  s.num_steps = 4;
  s.batch = 2;
  s.recv_ns = 1'000'000;
  s.admit_ns = 1'005'000;     // decode  =  5 us
  s.assemble_ns = 1'105'000;  // queue   = 100 us
  s.infer_ns = 1'115'000;     // assemble = 10 us
  s.done_ns = 1'915'000;      // infer   = 800 us
  s.send_ns = 1'935'000;      // respond =  20 us
  rec.record(s);
  rec.write_jsonl(path);

  const std::vector<ParsedSpan> parsed = parse_span_jsonl(path);
  ASSERT_EQ(parsed.size(), 1u);
  const ParsedSpan& p = parsed[0];
  EXPECT_EQ(p.server_id, 3u);
  EXPECT_EQ(p.recv_ns, 1'000'000u);
  EXPECT_EQ(p.batch, 2);
  EXPECT_TRUE(p.ok);
  EXPECT_DOUBLE_EQ(p.decode_us, 5.0);
  EXPECT_DOUBLE_EQ(p.queue_us, 100.0);
  EXPECT_DOUBLE_EQ(p.assemble_us, 10.0);
  EXPECT_DOUBLE_EQ(p.infer_us, 800.0);
  EXPECT_DOUBLE_EQ(p.respond_us, 20.0);
  EXPECT_DOUBLE_EQ(p.e2e_us, 935.0);
  // The five stages tile [recv, send] exactly.
  EXPECT_DOUBLE_EQ(p.decode_us + p.queue_us + p.assemble_us + p.infer_us +
                       p.respond_us,
                   p.e2e_us);

  EXPECT_THROW(parse_span_jsonl(temp_path("no_such_spans.jsonl")), Error);
}

}  // namespace
}  // namespace spiketune::obs
