// Dense-vs-session parity for the sparsity-aware inference engine.
//
// InferenceSession promises results *bit-identical* to
// SpikingNetwork::forward — same spike counts, same recorded activity —
// for every model-zoo topology, at any thread count, on either side of the
// sparse/dense crossover.  These tests pin that contract with random
// weights and density-controlled random inputs, and exercise the session
// lifecycle (reuse across windows, buffer growth past max_batch) plus the
// compile-time rejection of unsupported layers.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "infer/session.h"
#include "snn/model_zoo.h"
#include "snn/network.h"
#include "snn/rlif.h"

namespace spiketune::infer {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(int threads) { set_num_threads(threads); }
  ~ThreadGuard() { set_num_threads(1); }
};

// A window of `steps` batches where each element is nonzero with the given
// probability — both dispatch paths see realistic mixed-density inputs.
std::vector<Tensor> random_window(std::int64_t steps, Shape shape,
                                  double density, Rng& rng) {
  std::vector<Tensor> window;
  window.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t t = 0; t < steps; ++t) {
    Tensor x = Tensor::full(shape, 0.0f);
    float* p = x.data();
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      if (rng.uniform() < density) p[i] = static_cast<float>(rng.normal());
    }
    window.push_back(std::move(x));
  }
  return window;
}

void expect_bitwise_equal(const Tensor& want, const Tensor& got) {
  ASSERT_EQ(want.shape(), got.shape());
  EXPECT_EQ(std::memcmp(want.data(), got.data(),
                        static_cast<std::size_t>(want.numel()) * sizeof(float)),
            0)
      << "spike counts differ bitwise";
}

void expect_records_equal(const snn::SpikeRecord& want,
                          const snn::SpikeRecord& got) {
  ASSERT_EQ(want.num_layers(), got.num_layers());
  for (std::size_t i = 0; i < want.num_layers(); ++i) {
    const auto& w = want.layers()[i];
    const auto& g = got.layers()[i];
    EXPECT_EQ(w.layer_name, g.layer_name) << "layer " << i;
    EXPECT_EQ(w.spiking, g.spiking) << "layer " << i;
    EXPECT_EQ(w.input_nonzeros, g.input_nonzeros) << w.layer_name;
    EXPECT_EQ(w.input_elements, g.input_elements) << w.layer_name;
    EXPECT_EQ(w.output_nonzeros, g.output_nonzeros) << w.layer_name;
    EXPECT_EQ(w.output_elements, g.output_elements) << w.layer_name;
  }
  EXPECT_EQ(want.total_samples(), got.total_samples());
  EXPECT_DOUBLE_EQ(want.mean_firing_rate(), got.mean_firing_rate());
}

// Runs the window through the dense training path once, then through a
// session at 1 and 4 threads, asserting bitwise-equal spike counts and
// identical activity records every time.
void check_parity(snn::SpikingNetwork& net, const Shape& per_sample,
                  const std::vector<Tensor>& window, double crossover) {
  const auto dense = net.forward(window, {.record_stats = true});
  const auto model = CompiledModel::compile(net, per_sample);
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadGuard guard(threads);
    InferenceSession session(model,
                             {.max_batch = window.front().shape()[0],
                              .sparse_crossover = crossover,
                              .record_stats = true});
    const auto got = session.run(window);
    EXPECT_EQ(got.timesteps, dense.timesteps);
    expect_bitwise_equal(dense.spike_counts, got.spike_counts);
    expect_records_equal(dense.stats, got.stats);
    EXPECT_GE(got.mean_input_density, 0.0);
    EXPECT_LE(got.mean_input_density, 1.0);
  }
}

TEST(InferParity, MlpMatchesDenseForwardAtBothDensities) {
  snn::MlpConfig cfg;
  cfg.in_features = 48;
  cfg.hidden = 24;
  cfg.num_classes = 10;
  auto net = snn::make_snn_mlp(cfg);
  Rng rng(0x1f2e3d);
  for (double density : {0.15, 0.85}) {
    SCOPED_TRACE("density=" + std::to_string(density));
    auto window = random_window(6, Shape{5, 48}, density, rng);
    check_parity(*net, Shape{48}, window, /*crossover=*/0.35);
  }
}

TEST(InferParity, CsnnMatchesDenseForwardAtBothDensities) {
  snn::CsnnConfig cfg;
  cfg.image_size = 12;
  cfg.fc_hidden = 32;
  auto net = snn::make_svhn_csnn(cfg);
  Rng rng(0x7a57e);
  for (double density : {0.1, 0.9}) {
    SCOPED_TRACE("density=" + std::to_string(density));
    auto window = random_window(4, Shape{3, 3, 12, 12}, density, rng);
    check_parity(*net, Shape{3, 12, 12}, window, /*crossover=*/0.35);
  }
}

TEST(InferParity, CrossoverForcesEachKernelWithoutChangingResults) {
  snn::MlpConfig cfg;
  cfg.in_features = 40;
  cfg.hidden = 20;
  auto net = snn::make_snn_mlp(cfg);
  Rng rng(0xc0ffee);
  const std::int64_t steps = 5;
  auto window = random_window(steps, Shape{4, 40}, 0.5, rng);
  const auto dense = net->forward(window, {.record_stats = true});
  const auto model = CompiledModel::compile(*net, Shape{40});
  const std::int64_t weighted_layers = 2;  // two Linear stages

  // >= 1 forces the sparse gather kernel on every layer-step.
  InferenceSession sparse_only(model, {.max_batch = 4,
                                       .sparse_crossover = 1.5,
                                       .record_stats = true});
  const auto got_sparse = sparse_only.run(window);
  EXPECT_EQ(got_sparse.sparse_dispatches, steps * weighted_layers);
  EXPECT_EQ(got_sparse.dense_dispatches, 0);
  expect_bitwise_equal(dense.spike_counts, got_sparse.spike_counts);
  expect_records_equal(dense.stats, got_sparse.stats);

  // < 0 forces the dense GEMM fallback on every layer-step.
  InferenceSession dense_only(model, {.max_batch = 4,
                                      .sparse_crossover = -1.0,
                                      .record_stats = true});
  const auto got_dense = dense_only.run(window);
  EXPECT_EQ(got_dense.sparse_dispatches, 0);
  EXPECT_EQ(got_dense.dense_dispatches, steps * weighted_layers);
  expect_bitwise_equal(dense.spike_counts, got_dense.spike_counts);
  expect_records_equal(dense.stats, got_dense.stats);
}

TEST(InferSession, ReusesStateAcrossWindowsAndGrowsPastMaxBatch) {
  snn::MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = 16;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{32});
  Rng rng(0x5e55);

  // Deliberately small capacity: the second window (batch 6) must grow the
  // buffers, and the membrane state must reset between windows.
  InferenceSession session(model, {.max_batch = 2, .record_stats = true});
  auto first = random_window(4, Shape{2, 32}, 0.4, rng);
  auto second = random_window(3, Shape{6, 32}, 0.7, rng);

  const auto got_first = session.run(first);
  const auto got_second = session.run(second);

  const auto want_first = net->forward(first, {.record_stats = true});
  const auto want_second = net->forward(second, {.record_stats = true});
  expect_bitwise_equal(want_first.spike_counts, got_first.spike_counts);
  expect_bitwise_equal(want_second.spike_counts, got_second.spike_counts);
  expect_records_equal(want_second.stats, got_second.stats);
}

TEST(InferSession, InterleavedBatchSizesLeakNoState) {
  // The serving daemon feeds ONE session batches whose size jumps around
  // with traffic (grow, shrink, grow again).  Shrinking is the dangerous
  // direction: rows past the new batch still hold the previous window's
  // membrane potentials and spike indices, and any kernel that iterates by
  // capacity instead of batch would read them.  Every window must match a
  // fresh dense forward bitwise, in any order, at 1 and 4 threads.
  snn::MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = 16;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{32});

  const std::int64_t batch_plan[] = {8, 2, 16, 1, 16, 3};
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadGuard guard(threads);
    Rng rng(0xbadc0de + static_cast<std::uint64_t>(threads));
    InferenceSession session(model, {.max_batch = 4, .record_stats = true});
    for (std::int64_t n : batch_plan) {
      SCOPED_TRACE("batch=" + std::to_string(n));
      // Varying T and density across windows too, as mixed traffic would.
      const std::int64_t steps = 2 + (n % 3);
      auto window = random_window(steps, Shape{n, 32}, 0.1 + 0.05 * n, rng);
      const auto got = session.run(window);
      const auto want = net->forward(window, {.record_stats = true});
      expect_bitwise_equal(want.spike_counts, got.spike_counts);
      expect_records_equal(want.stats, got.stats);
    }
  }
}

TEST(InferSession, BatchedRowEqualsSoloRunBitwise) {
  // Per-sample batch invariance — the foundation of the serve parity gate:
  // a sample's spike counts in a batch of N equal the counts from running
  // it alone, whatever its batchmates are.
  snn::MlpConfig cfg;
  cfg.in_features = 24;
  cfg.hidden = 12;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{24});
  Rng rng(0x0107);
  const std::int64_t batch = 5;
  const std::int64_t steps = 4;
  auto window = random_window(steps, Shape{batch, 24}, 0.3, rng);

  InferenceSession batched(model, {.max_batch = batch});
  const auto all = batched.run(window);
  const std::int64_t out = model.output_shape()[0];

  for (std::int64_t i = 0; i < batch; ++i) {
    SCOPED_TRACE("row=" + std::to_string(i));
    std::vector<Tensor> solo_window;
    for (std::int64_t t = 0; t < steps; ++t) {
      Tensor x{Shape{1, 24}};
      std::memcpy(x.data(), window[static_cast<std::size_t>(t)].data() + i * 24,
                  24 * sizeof(float));
      solo_window.push_back(std::move(x));
    }
    InferenceSession solo(model, {.max_batch = 1});
    const auto one = solo.run(solo_window);
    EXPECT_EQ(std::memcmp(one.spike_counts.data(),
                          all.spike_counts.data() + i * out,
                          static_cast<std::size_t>(out) * sizeof(float)),
              0)
        << "row " << i << " differs from its solo run";
  }
}

TEST(InferCompile, MetadataMirrorsNetwork) {
  snn::CsnnConfig cfg;
  cfg.image_size = 12;
  cfg.fc_hidden = 32;
  auto net = snn::make_svhn_csnn(cfg);
  const auto model = CompiledModel::compile(*net, Shape{3, 12, 12});
  EXPECT_EQ(model.num_layers(), net->num_layers());
  EXPECT_EQ(model.num_parameters(), net->num_parameters());
  EXPECT_EQ(model.input_shape(), Shape({3, 12, 12}));
  EXPECT_EQ(model.output_shape(), net->output_shape(Shape{3, 12, 12}));

  const auto want = net->make_record();
  const auto got = model.make_record();
  ASSERT_EQ(want.num_layers(), got.num_layers());
  for (std::size_t i = 0; i < want.num_layers(); ++i) {
    EXPECT_EQ(want.layers()[i].layer_name, got.layers()[i].layer_name);
    EXPECT_EQ(want.layers()[i].spiking, got.layers()[i].spiking);
  }
}

TEST(InferCompile, RejectsUnsupportedLayers) {
  snn::SpikingNetwork net;
  snn::RlifConfig rcfg;
  rcfg.features = 8;
  net.add<snn::Rlif>(rcfg);
  EXPECT_THROW(CompiledModel::compile(net, Shape{8}), InvalidArgument);
}

TEST(InferSession, RejectsMismatchedInputs) {
  snn::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  auto net = snn::make_snn_mlp(cfg);
  const auto model = CompiledModel::compile(*net, Shape{16});
  InferenceSession session(model);
  EXPECT_THROW(session.run({}), InvalidArgument);
  Rng rng(1);
  auto wrong = random_window(2, Shape{3, 17}, 0.5, rng);
  EXPECT_THROW(session.run(wrong), InvalidArgument);
  // Steps with mismatched batch sizes are rejected too.
  std::vector<Tensor> ragged;
  ragged.push_back(Tensor::full(Shape{2, 16}, 0.0f));
  ragged.push_back(Tensor::full(Shape{3, 16}, 0.0f));
  EXPECT_THROW(session.run(ragged), InvalidArgument);
}

}  // namespace
}  // namespace spiketune::infer
