// Run-ledger subsystem tests: JsonValue build/parse round-trips, RunLedger
// write -> parse_ledger round-trips (fresh and resumed streams), the
// spike-health detectors (edge-triggered warnings + counters), SpikeRecord
// merge/add_step structure and overflow guards, per-run gauge retirement,
// dashboard HTML/CSV rendering, and an end-to-end smoke experiment with the
// ledger attached.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/json.h"
#include "exp/experiment.h"
#include "exp/ledger_flags.h"
#include "obs/dashboard.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/spike_health.h"
#include "obs/telemetry.h"
#include "snn/spike_stats.h"

using namespace spiketune;

namespace {

/// Enables the given telemetry bits for the lifetime of the guard.
class TelemetryGuard {
 public:
  explicit TelemetryGuard(unsigned bits) : bits_(bits) {
    obs::enable_telemetry(bits_);
  }
  ~TelemetryGuard() { obs::disable_telemetry(bits_); }
  TelemetryGuard(const TelemetryGuard&) = delete;
  TelemetryGuard& operator=(const TelemetryGuard&) = delete;

 private:
  unsigned bits_;
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

const obs::MetricSnapshot* find_metric(
    const std::vector<obs::MetricSnapshot>& snaps, const std::string& name) {
  for (const auto& s : snaps)
    if (s.name == name) return &s;
  return nullptr;
}

// ---------------------------------------------------------------- JsonValue

TEST(Json, BuildDumpParseRoundTrip) {
  auto obj = JsonValue::make_object();
  obj.set("s", "he\"llo\n");
  obj.set("n", 1.5);
  obj.set("i", std::int64_t{42});
  obj.set("b", true);
  obj.set("z", JsonValue());
  auto arr = JsonValue::make_array();
  arr.push_back(1.0);
  arr.push_back("two");
  obj.set("a", std::move(arr));

  const std::string text = obj.dump();
  const JsonValue back = JsonValue::parse(text, "test");
  EXPECT_EQ(back.string_or("s", ""), "he\"llo\n");
  EXPECT_DOUBLE_EQ(back.number_or("n", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(back.number_or("i", 0.0), 42.0);
  EXPECT_TRUE(back.find("b")->as_bool());
  EXPECT_TRUE(back.find("z")->is_null());
  ASSERT_NE(back.find("a"), nullptr);
  EXPECT_EQ(back.find("a")->as_array().size(), 2u);
  EXPECT_EQ(back.find("a")->as_array()[1].as_string(), "two");
}

TEST(Json, PreservesInsertionOrder) {
  auto obj = JsonValue::make_object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  const std::string text = obj.dump();
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
  // set() on an existing key overwrites in place.
  obj.set("zebra", 3);
  EXPECT_DOUBLE_EQ(obj.number_or("zebra", 0.0), 3.0);
  EXPECT_EQ(obj.as_object().size(), 2u);
}

TEST(Json, StrictParseRejectsBadInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\":1", "t"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x", "t"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("{'a':1}", "t"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("", "t"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("nul", "t"), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("[1,]", "t"), InvalidArgument);
}

TEST(Json, ParseRejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(JsonValue::parse(deep, "t"), InvalidArgument);
}

TEST(Json, UnicodeEscapeDecodes) {
  const JsonValue v = JsonValue::parse("\"a\\u00e9b\"", "t");
  EXPECT_EQ(v.as_string(), "a\xc3\xa9"
                           "b");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  auto obj = JsonValue::make_object();
  obj.set("bad", std::numeric_limits<double>::quiet_NaN());
  EXPECT_NE(obj.dump().find("\"bad\":null"), std::string::npos);
}

// ---------------------------------------------------------------- RunLedger

obs::LedgerManifest test_manifest() {
  obs::LedgerManifest m;
  m.run_id = "unit";
  m.config_fingerprint = 0xDEADBEEFCAFEF00DULL;
  m.seed = 0xda7aULL;
  m.threads = 2;
  m.argv = "test --ledger=x";
  m.build = "test-build";
  m.info = {{"dataset", "svhn"}, {"encoder", "direct"}};
  m.params = {{"epochs", 3.0}, {"beta", 0.25}};
  return m;
}

obs::LedgerEpoch test_epoch(std::int64_t e) {
  obs::LedgerEpoch ep;
  ep.epoch = e;
  ep.train_loss = 2.3 - 0.1 * static_cast<double>(e);
  ep.train_accuracy = 0.1 * static_cast<double>(e + 1);
  ep.lr = 5e-3;
  ep.grad_norm_mean = 1.25;
  ep.grad_norm_max = 4.0;
  ep.firing_rate = 0.05 * static_cast<double>(e + 1);
  ep.layers = {{0, "conv2d", false, 1.0, 1.0},
               {1, "lif", true, 1.0, 0.1 * static_cast<double>(e + 1)}};
  ep.hw = {{"latency_us", 20.0 - static_cast<double>(e)},
           {"throughput_fps", 1e5},
           {"fps_per_watt", 3e4}};
  return ep;
}

TEST(RunLedger, DisabledLedgerIsNoOp) {
  obs::RunLedger ledger;
  EXPECT_FALSE(ledger.enabled());
  ledger.write_manifest(test_manifest());  // must not crash or create files
  ledger.write_epoch(test_epoch(0));
}

TEST(RunLedger, WriteParseRoundTrip) {
  const std::string path = temp_path("ledger_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    obs::RunLedger ledger(path);
    ledger.write_manifest(test_manifest());
    for (std::int64_t e = 0; e < 3; ++e) ledger.write_epoch(test_epoch(e));
    obs::LedgerWarning w;
    w.epoch = 2;
    w.detector = "dead_layer";
    w.layer = "lif";
    w.value = 0.0;
    w.threshold = 1e-3;
    w.message = "layer died";
    ledger.write_warning(w);
    obs::LedgerFinal fin;
    fin.values = {{"accuracy", 0.3}, {"fps_per_watt", 3e4}};
    ledger.write_final(fin);
  }

  // Every line is a standalone JSON object tagged with a record type.
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const JsonValue v = JsonValue::parse(line, "ledger-line");
    EXPECT_FALSE(v.string_or("record", "").empty());
    ++lines;
  }
  EXPECT_EQ(lines, 6u);  // manifest + 3 epochs + warning + final

  const obs::ParsedLedger parsed = obs::parse_ledger(path);
  EXPECT_EQ(parsed.manifest.run_id, "unit");
  EXPECT_EQ(parsed.manifest.config_fingerprint, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(parsed.manifest.seed, 0xda7aULL);
  EXPECT_EQ(parsed.manifest.threads, 2);
  EXPECT_EQ(parsed.manifest.resumed_from, -1);
  EXPECT_EQ(parsed.manifest_count, 1);
  ASSERT_EQ(parsed.epochs.size(), 3u);
  for (std::size_t i = 0; i < parsed.epochs.size(); ++i) {
    EXPECT_EQ(parsed.epochs[i].epoch, static_cast<std::int64_t>(i));
    ASSERT_EQ(parsed.epochs[i].layers.size(), 2u);
    EXPECT_EQ(parsed.epochs[i].layers[1].name, "lif");
    EXPECT_TRUE(parsed.epochs[i].layers[1].spiking);
    EXPECT_EQ(parsed.epochs[i].hw.size(), 3u);
  }
  EXPECT_DOUBLE_EQ(parsed.epochs[1].train_accuracy, 0.2);
  ASSERT_EQ(parsed.warnings.size(), 1u);
  EXPECT_EQ(parsed.warnings[0].detector, "dead_layer");
  ASSERT_TRUE(parsed.has_final);
  EXPECT_EQ(parsed.final_record.values.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.final_record.values[0].second, 0.3);
}

TEST(RunLedger, ResumeAppendsWithMarker) {
  const std::string path = temp_path("ledger_resume.jsonl");
  std::remove(path.c_str());
  {
    obs::RunLedger ledger(path);
    ledger.write_manifest(test_manifest());
    ledger.write_epoch(test_epoch(0));
    ledger.write_epoch(test_epoch(1));
  }
  {
    obs::RunLedger ledger(path, /*append=*/true);
    auto m = test_manifest();
    m.resumed_from = 2;
    ledger.write_manifest(m);
    ledger.write_epoch(test_epoch(2));
  }
  const obs::ParsedLedger parsed = obs::parse_ledger(path);
  EXPECT_EQ(parsed.manifest_count, 2);
  EXPECT_EQ(parsed.manifest.resumed_from, -1);  // first manifest kept
  ASSERT_EQ(parsed.epochs.size(), 3u);
  EXPECT_EQ(parsed.epochs.back().epoch, 2);
}

TEST(RunLedger, TruncatesWithoutAppend) {
  const std::string path = temp_path("ledger_trunc.jsonl");
  std::remove(path.c_str());
  {
    obs::RunLedger ledger(path);
    ledger.write_manifest(test_manifest());
    ledger.write_epoch(test_epoch(0));
  }
  {
    obs::RunLedger ledger(path);  // fresh run over the same path
    ledger.write_manifest(test_manifest());
  }
  const obs::ParsedLedger parsed = obs::parse_ledger(path);
  EXPECT_EQ(parsed.manifest_count, 1);
  EXPECT_TRUE(parsed.epochs.empty());
}

TEST(RunLedger, ParseRejectsMissingManifest) {
  const std::string path = temp_path("ledger_bad.jsonl");
  {
    std::ofstream out(path);
    out << "{\"record\":\"epoch\",\"epoch\":0}\n";
  }
  EXPECT_THROW(obs::parse_ledger(path), InvalidArgument);
  EXPECT_THROW(obs::parse_ledger(temp_path("no_such_ledger.jsonl")),
               InvalidArgument);
}

TEST(RunLedger, ParseDirSortsAndRequiresRuns) {
  const std::string dir = temp_path("ledger_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EXPECT_THROW(obs::parse_ledger_dir(dir), InvalidArgument);
  for (const char* name : {"b_run.jsonl", "a_run.jsonl"}) {
    obs::RunLedger ledger(dir + "/" + name);
    auto m = test_manifest();
    m.run_id = name;
    ledger.write_manifest(m);
    ledger.write_epoch(test_epoch(0));
  }
  const auto runs = obs::parse_ledger_dir(dir);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].manifest.run_id, "a_run.jsonl");
  EXPECT_EQ(runs[1].manifest.run_id, "b_run.jsonl");
}

// -------------------------------------------------------------- ledger flags

TEST(LedgerFlags, SanitizeRunId) {
  EXPECT_EQ(exp::sanitize_run_id("beta=0.25 theta=1"), "beta_0.25_theta_1");
  EXPECT_EQ(exp::sanitize_run_id("a/b\\c"), "a_b_c");
  EXPECT_EQ(exp::sanitize_run_id("ok-name.v2"), "ok-name.v2");
}

// ------------------------------------------------------------- spike health

std::vector<obs::LedgerLayerStat> healthy_layers(double rate) {
  return {{0, "conv2d", false, 1.0, 1.0},
          {1, "lif", true, 1.0, rate},
          {2, "lif", true, 1.0, rate * 1.5}};
}

TEST(SpikeHealth, SilentOnHealthyTrajectory) {
  obs::SpikeHealthMonitor monitor;
  for (std::int64_t e = 0; e < 10; ++e)
    EXPECT_TRUE(monitor.check(e, healthy_layers(0.1 + 0.01 * e)).empty());
  EXPECT_EQ(monitor.warning_count(), 0);
}

TEST(SpikeHealth, DeadLayerFiresOnceAndRearmsAfterRecovery) {
  TelemetryGuard guard(obs::kMetricsBit);
  obs::reset_metrics();
  obs::SpikeHealthMonitor monitor;
  auto dead = healthy_layers(0.1);
  dead[1].out_density = 0.0;

  // Warm-up epochs are a grace period: nothing fires before min_epoch.
  EXPECT_TRUE(monitor.check(0, dead).empty());
  ASSERT_GE(monitor.config().min_epoch, 1);

  const auto first = monitor.check(monitor.config().min_epoch, dead);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].detector, "dead_layer");
  // Layers are identified by "<index>.<name>": the test topology has two
  // layers named "lif" and only index 1 is dead.
  EXPECT_EQ(first[0].layer, "1.lif");
  EXPECT_DOUBLE_EQ(first[0].value, 0.0);
  EXPECT_NE(first[0].message.find("1.lif"), std::string::npos);

  // Staying dead is not news; recovering and dying again is.
  EXPECT_TRUE(monitor.check(monitor.config().min_epoch + 1, dead).empty());
  EXPECT_TRUE(
      monitor.check(monitor.config().min_epoch + 2, healthy_layers(0.1))
          .empty());
  EXPECT_EQ(monitor.check(monitor.config().min_epoch + 3, dead).size(), 1u);
  EXPECT_EQ(monitor.warning_count(), 2);

  const auto* counter =
      find_metric(obs::snapshot_metrics(), "train.spike_health.dead_layer");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->count, 2);
}

TEST(SpikeHealth, SaturatedLayerFires) {
  obs::SpikeHealthMonitor monitor;
  auto layers = healthy_layers(0.1);
  layers[2].out_density = 0.99;
  const auto warnings = monitor.check(monitor.config().min_epoch, layers);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].detector, "saturated_layer");
  EXPECT_DOUBLE_EQ(warnings[0].threshold,
                   monitor.config().saturation_density);
}

TEST(SpikeHealth, CollapseFiresOnMeanRateDrop) {
  obs::SpikeHealthMonitor monitor;
  const auto e0 = monitor.config().min_epoch;
  EXPECT_TRUE(monitor.check(e0, healthy_layers(0.2)).empty());
  // Mean rate falls to < half the running peak -> network-wide collapse.
  const auto warnings = monitor.check(e0 + 1, healthy_layers(0.05));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].detector, "collapse");
  EXPECT_TRUE(warnings[0].layer.empty());
}

TEST(SpikeHealth, DisabledMonitorStaysQuiet) {
  obs::SpikeHealthConfig config;
  config.enabled = false;
  obs::SpikeHealthMonitor monitor(config);
  auto dead = healthy_layers(0.0);
  EXPECT_TRUE(monitor.check(10, dead).empty());
}

// ------------------------------------------------------ SpikeRecord guards

TEST(SpikeRecordGuards, AddStepValidatesIndexAndCounts) {
  snn::SpikeRecord record({"conv", "lif"}, {false, true});
  EXPECT_THROW(record.add_step(2, 1, 4, 1, 4), InvalidArgument);
  EXPECT_THROW(record.add_step(0, -1, 4, 1, 4), InvalidArgument);
  EXPECT_THROW(record.add_step(0, 5, 4, 1, 4), InvalidArgument);
  EXPECT_THROW(record.add_step(0, 1, 4, 5, 4), InvalidArgument);
  record.add_step(0, 1, 4, 2, 4);  // valid counts accumulate
  EXPECT_EQ(record.layers()[0].input_nonzeros, 1);
}

TEST(SpikeRecordGuards, AddStepRejectsOverflow) {
  snn::SpikeRecord record({"lif"}, {true});
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  record.add_step(0, big, big, big, big);
  EXPECT_THROW(record.add_step(0, 1, 1, 0, 0), InvalidArgument);
}

TEST(SpikeRecordGuards, MergeRejectsMismatchedStructure) {
  snn::SpikeRecord a({"conv", "lif"}, {false, true});
  a.add_step(0, 1, 4, 2, 4);

  snn::SpikeRecord wrong_count({"conv"}, {false});
  EXPECT_THROW(a.merge(wrong_count), InvalidArgument);
  snn::SpikeRecord wrong_name({"conv", "relu"}, {false, true});
  EXPECT_THROW(a.merge(wrong_name), InvalidArgument);
  snn::SpikeRecord wrong_spiking({"conv", "lif"}, {false, false});
  EXPECT_THROW(a.merge(wrong_spiking), InvalidArgument);

  // A failed merge must leave the destination untouched.
  EXPECT_EQ(a.layers()[0].input_nonzeros, 1);
  EXPECT_EQ(a.layers()[0].input_elements, 4);

  snn::SpikeRecord ok({"conv", "lif"}, {false, true});
  ok.add_step(0, 3, 4, 1, 4);
  a.merge(ok);
  EXPECT_EQ(a.layers()[0].input_nonzeros, 4);
}

TEST(SpikeRecordGuards, MergeRejectsCounterOverflow) {
  snn::SpikeRecord a({"lif"}, {true});
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  a.add_step(0, big, big, 0, 0);
  snn::SpikeRecord b({"lif"}, {true});
  b.add_step(0, 1, 1, 0, 0);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_EQ(a.layers()[0].input_nonzeros, big);  // unchanged
}

// ------------------------------------------------------- gauge retirement

TEST(GaugeRetirement, PrefixResetHidesUntilNextSet) {
  TelemetryGuard guard(obs::kMetricsBit);
  obs::reset_metrics();
  const auto g1 = obs::gauge("train.firing_rate.netA.0.lif");
  const auto g2 = obs::gauge("train.firing_rate.netB.0.lif");
  obs::set(g1, 0.25);
  obs::set(g2, 0.5);

  obs::reset_gauges_with_prefix("train.firing_rate.netA.");
  auto snaps = obs::snapshot_metrics();
  EXPECT_EQ(find_metric(snaps, "train.firing_rate.netA.0.lif"), nullptr);
  const auto* kept = find_metric(snaps, "train.firing_rate.netB.0.lif");
  ASSERT_NE(kept, nullptr);
  EXPECT_DOUBLE_EQ(kept->value, 0.5);

  // The next set() revives the retired gauge with the fresh value only.
  obs::set(g1, 0.125);
  snaps = obs::snapshot_metrics();
  const auto* revived = find_metric(snaps, "train.firing_rate.netA.0.lif");
  ASSERT_NE(revived, nullptr);
  EXPECT_DOUBLE_EQ(revived->value, 0.125);
}

// ------------------------------------------------------------- dashboard

std::vector<obs::ParsedLedger> synthetic_runs(std::size_t n) {
  std::vector<obs::ParsedLedger> runs;
  for (std::size_t r = 0; r < n; ++r) {
    obs::ParsedLedger run;
    run.path = "run" + std::to_string(r) + ".jsonl";
    run.manifest = test_manifest();
    run.manifest.run_id = "run" + std::to_string(r);
    for (std::int64_t e = 0; e < 3; ++e) run.epochs.push_back(test_epoch(e));
    run.final_record.values = {{"accuracy", 0.3},
                               {"fps_per_watt", 3e4 + 100.0 * r}};
    run.has_final = true;
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(Dashboard, RendersSelfContainedHtml) {
  const auto runs = synthetic_runs(2);
  const std::string html = obs::render_dashboard_html(runs, {});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<polyline"), std::string::npos);
  EXPECT_NE(html.find("run0"), std::string::npos);
  EXPECT_NE(html.find("prefers-color-scheme: dark"), std::string::npos);
  EXPECT_NE(html.find("<title>"), std::string::npos);  // native tooltips
  // Self-contained: no external scripts, stylesheets, images, or fonts.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("href="), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST(Dashboard, EscapesUserStrings) {
  auto runs = synthetic_runs(1);
  runs[0].manifest.run_id = "<script>alert(1)</script>";
  obs::DashboardOptions options;
  options.title = "a < b & c";
  const std::string html = obs::render_dashboard_html(runs, options);
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;alert"), std::string::npos);
  EXPECT_NE(html.find("a &lt; b &amp; c"), std::string::npos);
}

TEST(Dashboard, FoldsBeyondPaletteIntoOther) {
  const auto runs = synthetic_runs(10);  // 10 > the 8-color palette
  const std::string html = obs::render_dashboard_html(runs, {});
  EXPECT_NE(html.find("var(--other)"), std::string::npos);
  EXPECT_NE(html.find("other (3 runs)"), std::string::npos);
}

TEST(Dashboard, RejectsEmptyInput) {
  EXPECT_THROW(obs::render_dashboard_html({}, {}), InvalidArgument);
}

TEST(Dashboard, WritesCsvRows) {
  const std::string path = temp_path("ledger_dash.csv");
  obs::write_ledger_csv(path, synthetic_runs(2));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u);  // header + 2 runs x 3 epochs
  EXPECT_EQ(lines[0],
            "run_id,epoch,train_loss,train_accuracy,lr,grad_norm_mean,"
            "grad_norm_max,firing_rate,latency_us,throughput_fps,watts,"
            "fps_per_watt");
  EXPECT_NE(lines[1].find("run0,0,"), std::string::npos);
}

// ------------------------------------------------------------- end to end

exp::ExperimentConfig smoke_config() {
  auto cfg = exp::ExperimentConfig::for_profile(exp::Profile::kSmoke);
  cfg.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  return cfg;
}

TEST(LedgerEndToEnd, SmokeExperimentWritesFullTrajectory) {
  const std::string dir = temp_path("ledger_e2e");
  std::filesystem::remove_all(dir);
  auto cfg = smoke_config();
  cfg.ledger.dir = dir;
  cfg.ledger.run_id = "smoke";
  cfg.ledger.argv = "test_ledger --e2e";
  const auto result = exp::run_experiment(cfg);

  const auto parsed = obs::parse_ledger(dir + "/smoke.jsonl");
  EXPECT_EQ(parsed.manifest.run_id, "smoke");
  EXPECT_NE(parsed.manifest.config_fingerprint, 0u);
  EXPECT_EQ(parsed.manifest.argv, "test_ledger --e2e");
  ASSERT_EQ(parsed.epochs.size(),
            static_cast<std::size_t>(cfg.trainer.epochs));
  for (const auto& e : parsed.epochs) {
    EXPECT_GT(e.lr, 0.0);
    EXPECT_GT(e.grad_norm_max, 0.0);
    EXPECT_FALSE(e.layers.empty());
    // The hardware trajectory is live from epoch 0.
    bool found_fpsw = false;
    for (const auto& [key, value] : e.hw) {
      if (key == "fps_per_watt") {
        found_fpsw = true;
        EXPECT_GT(value, 0.0);
      }
    }
    EXPECT_TRUE(found_fpsw);
  }
  ASSERT_TRUE(parsed.has_final);
  double final_acc = -1.0;
  for (const auto& [key, value] : parsed.final_record.values)
    if (key == "accuracy") final_acc = value;
  EXPECT_DOUBLE_EQ(final_acc, result.accuracy);

  // The probe pass must not perturb training: an identical config without
  // the ledger reaches bit-identical accuracy.
  const auto baseline = exp::run_experiment(smoke_config());
  EXPECT_DOUBLE_EQ(baseline.accuracy, result.accuracy);

  // And the dashboard renders the directory.
  const std::string out = dir + "/dash.html";
  obs::write_dashboard_html(out, obs::parse_ledger_dir(dir), {});
  std::ifstream in(out);
  EXPECT_TRUE(in.good());
}

TEST(LedgerEndToEnd, DeadNetworkTriggersSpikeHealthWarnings) {
  TelemetryGuard guard(obs::kMetricsBit);
  obs::reset_metrics();
  const std::string dir = temp_path("ledger_dead");
  std::filesystem::remove_all(dir);
  auto cfg = smoke_config();
  // An unreachable threshold silences every LIF layer: the canonical
  // dead-network failure the monitor exists to catch.
  cfg.model.lif.threshold = 100.0f;
  cfg.ledger.dir = dir;
  cfg.ledger.run_id = "dead";
  exp::run_experiment(cfg);

  const auto parsed = obs::parse_ledger(dir + "/dead.jsonl");
  ASSERT_FALSE(parsed.warnings.empty());
  bool saw_dead = false;
  for (const auto& w : parsed.warnings)
    if (w.detector == "dead_layer") saw_dead = true;
  EXPECT_TRUE(saw_dead);
  const auto* counter =
      find_metric(obs::snapshot_metrics(), "train.spike_health.dead_layer");
  ASSERT_NE(counter, nullptr);
  EXPECT_GT(counter->count, 0);
}

TEST(LedgerEndToEnd, ResumedRunAppendsSecondManifest) {
  const std::string ledger_dir = temp_path("ledger_resume_e2e");
  const std::string ckpt_dir = temp_path("ledger_resume_ckpt");
  std::filesystem::remove_all(ledger_dir);
  std::filesystem::remove_all(ckpt_dir);

  auto cfg = smoke_config();
  cfg.ledger.dir = ledger_dir;
  cfg.ledger.run_id = "resumable";
  cfg.trainer.checkpoint_dir = ckpt_dir;
  cfg.trainer.stop_after_epochs = 1;  // simulate an interrupted run
  exp::run_experiment(cfg);

  cfg.trainer.stop_after_epochs = 0;
  cfg.trainer.resume = true;
  exp::run_experiment(cfg);

  const auto parsed = obs::parse_ledger(ledger_dir + "/resumable.jsonl");
  EXPECT_GT(parsed.manifest_count, 1);
  ASSERT_EQ(parsed.epochs.size(),
            static_cast<std::size_t>(cfg.trainer.epochs));
  for (std::size_t i = 0; i < parsed.epochs.size(); ++i)
    EXPECT_EQ(parsed.epochs[i].epoch, static_cast<std::int64_t>(i));
  EXPECT_TRUE(parsed.has_final);
}

}  // namespace
