// Cycle-level event simulator tests, including VAL-SIM (agreement with the
// analytic model within a documented envelope).
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "hw/calibration.h"
#include "hw/event_sim.h"
#include "hw/perf_model.h"

namespace spiketune::hw {
namespace {

EventSimConfig one_layer(std::int64_t pes, std::int64_t fanout,
                         std::int64_t neurons) {
  EventSimConfig cfg;
  cfg.pes = {pes};
  cfg.fanout = {fanout};
  cfg.neurons = {neurons};
  return cfg;
}

TEST(EventSim, HandComputableSingleTick) {
  // 2 PEs, fanout 10, 5 events, 8 neurons, 4 dispatch ports (capped at 2).
  auto cfg = one_layer(2, 10, 8);
  const auto r = simulate_inference(cfg, {{5}});
  // dispatch = ceil(5/2) = 3; mac = ceil(5*10/2) = 25 (binds over dispatch);
  // update = ceil(8/2) = 4.
  const double expected = calib::kStageOverheadCycles + 25.0 + 4.0;
  EXPECT_DOUBLE_EQ(r.total_cycles, expected);
  EXPECT_DOUBLE_EQ(r.mean_stage_cycles, expected);
}

TEST(EventSim, ZeroEventsStillPaysOverheadAndUpdate) {
  auto cfg = one_layer(4, 100, 16);
  const auto r = simulate_inference(cfg, {{0}});
  EXPECT_DOUBLE_EQ(r.total_cycles, calib::kStageOverheadCycles + 4.0);
}

TEST(EventSim, LockStepTakesMaxAcrossLayers) {
  EventSimConfig cfg;
  cfg.pes = {1, 1};
  cfg.fanout = {10, 10};
  cfg.neurons = {0, 0};
  // Layer 0 gets 10 events (100 cycles), layer 1 gets 1 (10 cycles).
  const auto r = simulate_inference(cfg, {{10, 1}});
  EXPECT_DOUBLE_EQ(r.total_cycles,
                   calib::kStageOverheadCycles + 10.0 * 10.0);
}

TEST(EventSim, MorePesIsFaster) {
  const SpikeTrace trace{{100}, {80}, {120}};
  const auto slow = simulate_inference(one_layer(2, 64, 256), trace);
  const auto fast = simulate_inference(one_layer(16, 64, 256), trace);
  EXPECT_LT(fast.total_cycles, slow.total_cycles);
  EXPECT_GT(fast.throughput_fps, slow.throughput_fps);
}

TEST(EventSim, AntiCorrelatedBurstsAcrossLayersCost) {
  // Lock-step pays the per-tick maximum across layers, so bursts that
  // alternate between layers are strictly worse than a smooth trace with
  // the same per-layer totals.
  EventSimConfig cfg;
  cfg.pes = {4, 4};
  cfg.fanout = {32, 32};
  cfg.neurons = {64, 64};
  const auto smooth = simulate_inference(cfg, {{50, 50}, {50, 50}});
  const auto bursty = simulate_inference(cfg, {{100, 0}, {0, 100}});
  EXPECT_GT(bursty.total_cycles, smooth.total_cycles);
}

TEST(EventSim, UtilizationBounded) {
  EventSimConfig cfg;
  cfg.pes = {4, 4};
  cfg.fanout = {16, 16};
  cfg.neurons = {32, 32};
  const auto r = simulate_inference(cfg, {{40, 4}, {36, 2}});
  ASSERT_EQ(r.layer_utilization.size(), 2u);
  for (double u : r.layer_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_GT(r.layer_utilization[0], r.layer_utilization[1]);
}

TEST(EventSim, ValidatesInput) {
  auto cfg = one_layer(2, 8, 4);
  EXPECT_THROW(simulate_inference(cfg, {}), InvalidArgument);
  EXPECT_THROW(simulate_inference(cfg, {{1, 2}}), InvalidArgument);
  EXPECT_THROW(simulate_inference(cfg, {{-1}}), InvalidArgument);
  cfg.pes = {0};
  EXPECT_THROW(simulate_inference(cfg, {{1}}), InvalidArgument);
}

std::vector<LayerWorkload> sim_workloads() {
  LayerWorkload a;
  a.name = "conv1";
  a.neurons = 2048;
  a.fanout = 288;
  a.input_size = 768;
  a.avg_input_spikes = 0.15 * 768;
  a.num_weights = 9216;
  LayerWorkload b;
  b.name = "fc1";
  b.neurons = 256;
  b.fanout = 256;
  b.input_size = 512;
  b.avg_input_spikes = 0.08 * 512;
  b.num_weights = 131072;
  return {a, b};
}

TEST(EventSim, RandomTraceMatchesDensity) {
  const auto ws = sim_workloads();
  Rng rng(4242);
  const auto trace = random_trace(ws, 400, rng);
  ASSERT_EQ(trace.size(), 400u);
  double mean0 = 0.0;
  for (const auto& step : trace) mean0 += static_cast<double>(step[0]);
  mean0 /= 400.0;
  EXPECT_NEAR(mean0, ws[0].avg_input_spikes,
              0.1 * ws[0].avg_input_spikes);
  for (const auto& step : trace) {
    EXPECT_GE(step[0], 0);
    EXPECT_LE(step[0], ws[0].input_size);
  }
}

// VAL-SIM: the analytic mean-value model and the cycle-level simulator
// must agree on mean stage cycles within 15% on realistic traces (the sim
// is >= analytic because lock-step pays per-tick maxima).
TEST(EventSim, AgreesWithAnalyticModel) {
  const auto ws = sim_workloads();
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto alloc = allocate(ws, dev, AllocationPolicy::kBalanced);
  const auto analytic =
      analyze(ws, alloc, dev, 64, ComputeMode::kEventDriven);

  Rng rng(77);
  const auto trace = random_trace(ws, 64, rng);
  const auto sim =
      simulate_inference(EventSimConfig::from(ws, alloc, dev), trace);

  EXPECT_GE(sim.mean_stage_cycles, 0.85 * analytic.stage_cycles);
  EXPECT_LE(sim.mean_stage_cycles, 1.15 * analytic.stage_cycles);
}

TEST(EventSim, ConfigFromMapping) {
  const auto ws = sim_workloads();
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto alloc = allocate(ws, dev, AllocationPolicy::kBalanced);
  const auto cfg = EventSimConfig::from(ws, alloc, dev);
  EXPECT_EQ(cfg.pes, alloc.pes_per_layer);
  EXPECT_EQ(cfg.fanout[0], 288);
  EXPECT_EQ(cfg.neurons[1], 256);
  EXPECT_DOUBLE_EQ(cfg.clock_hz, dev.clock_hz);
}

}  // namespace
}  // namespace spiketune::hw
