// Hardware model tests: device catalog, workload extraction, allocation,
// analytic performance, power — the invariants behind the paper's numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "hw/accelerator.h"
#include "hw/baseline.h"
#include "hw/calibration.h"
#include "snn/model_zoo.h"

namespace spiketune::hw {
namespace {

// Hand-built workload pair: a heavy conv-like layer and a light fc layer.
std::vector<LayerWorkload> two_layer_workload(double density1 = 0.2,
                                              double density2 = 0.1) {
  LayerWorkload a;
  a.name = "conv1";
  a.layer_index = 0;
  a.neurons = 4096;
  a.fanout = 288;
  a.input_size = 3072;
  a.avg_input_spikes = density1 * static_cast<double>(a.input_size);
  a.num_weights = 9216;
  LayerWorkload b;
  b.name = "fc1";
  b.layer_index = 3;
  b.neurons = 256;
  b.fanout = 256;
  b.input_size = 1024;
  b.avg_input_spikes = density2 * static_cast<double>(b.input_size);
  b.num_weights = 262144;
  return {a, b};
}

TEST(Fpga, CatalogLookup) {
  EXPECT_EQ(device_by_name("ku5p").name, "xcku5p");
  EXPECT_EQ(device_by_name("ku3p").name, "xcku3p");
  EXPECT_EQ(device_by_name("ku15p").name, "xcku15p");
  EXPECT_THROW(device_by_name("virtex"), InvalidArgument);
}

TEST(Fpga, CatalogOrdering) {
  // Resource envelopes grow with part size.
  const auto small = kintex_ultrascale_plus_ku3p();
  const auto mid = kintex_ultrascale_plus_ku5p();
  const auto big = kintex_ultrascale_plus_ku15p();
  EXPECT_LT(small.luts, mid.luts);
  EXPECT_LT(mid.luts, big.luts);
  EXPECT_LT(small.dsps, mid.dsps);
}

TEST(Fpga, ResourceUsageFits) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  ResourceUsage ok{1000, 1000, 10, 100};
  EXPECT_TRUE(ok.fits(dev));
  ResourceUsage too_many_dsps{0, 0, dev.dsps + 1, 0};
  EXPECT_FALSE(too_many_dsps.fits(dev));
}

TEST(Workload, SynopsAlgebra) {
  const auto ws = two_layer_workload(0.25, 0.5);
  EXPECT_DOUBLE_EQ(ws[0].dense_synops(), 3072.0 * 288.0);
  EXPECT_DOUBLE_EQ(ws[0].sparse_synops(), 0.25 * 3072.0 * 288.0);
  EXPECT_DOUBLE_EQ(ws[0].input_density(), 0.25);
  EXPECT_DOUBLE_EQ(total_dense_synops(ws),
                   ws[0].dense_synops() + ws[1].dense_synops());
  EXPECT_DOUBLE_EQ(total_sparse_synops(ws),
                   ws[0].sparse_synops() + ws[1].sparse_synops());
  EXPECT_EQ(total_neurons(ws), 4096 + 256);
}

TEST(Workload, ExtractFromNetworkAndRecord) {
  snn::MlpConfig cfg;
  cfg.in_features = 16;
  cfg.hidden = 8;
  cfg.num_classes = 4;
  auto net = snn::make_snn_mlp(cfg);
  const std::int64_t T = 5;
  auto out = net->forward(
      std::vector<Tensor>(T, Tensor::full(Shape{2, 16}, 1.0f)),
      {.record_stats = true, .record_step_nonzeros = true});
  // The per-step tally is what the cycle-level simulator replays: shaped
  // [T][L] exactly like hw::SpikeTrace.
  ASSERT_EQ(out.step_input_nonzeros.size(), static_cast<std::size_t>(T));
  ASSERT_EQ(out.step_input_nonzeros[0].size(), net->num_layers());

  const auto ws = extract_workloads(*net, out.stats, T);
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].name, "fc1");
  EXPECT_EQ(ws[1].name, "fc2");
  EXPECT_EQ(ws[0].fanout, 8);
  EXPECT_EQ(ws[1].fanout, 4);
  // Workloads are per-inference (single sample) per timestep.
  EXPECT_EQ(ws[0].input_size, 16);
  EXPECT_EQ(ws[0].neurons, 8);
  // All-ones input: conv1 sees density 1.
  EXPECT_DOUBLE_EQ(ws[0].input_density(), 1.0);
  EXPECT_EQ(ws[0].num_weights, 16 * 8);
}

TEST(Workload, ExtractRejectsEmptyRecord) {
  auto net = snn::make_snn_mlp(snn::MlpConfig{});
  auto record = net->make_record();
  EXPECT_THROW(extract_workloads(*net, record, 5), InvalidArgument);
}

TEST(Allocate, BudgetPositiveAndResourceBound) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const std::int64_t budget = pe_budget(dev);
  EXPECT_GT(budget, 0);
  EXPECT_LE(budget * calib::kLutsPerPe,
            static_cast<std::int64_t>(calib::kResourceHeadroom * dev.luts) + 1);
  EXPECT_LE(budget * calib::kDspsPerPe,
            static_cast<std::int64_t>(calib::kResourceHeadroom * dev.dsps) + 1);
}

TEST(Allocate, UsesFullBudgetAndFits) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload();
  for (auto policy : {AllocationPolicy::kBalanced,
                      AllocationPolicy::kBalancedDense,
                      AllocationPolicy::kUniform}) {
    const Allocation a = allocate(ws, dev, policy);
    EXPECT_LE(a.total_pes, pe_budget(dev));
    EXPECT_GE(a.total_pes,
              pe_budget(dev) - static_cast<std::int64_t>(ws.size()));
    EXPECT_TRUE(a.usage.fits(dev)) << policy_name(policy);
    for (auto p : a.pes_per_layer) EXPECT_GE(p, 1);
  }
}

TEST(Allocate, BalancedGivesHeavyLayerMorePes) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload(0.5, 0.01);
  const Allocation a = allocate(ws, dev, AllocationPolicy::kBalanced);
  EXPECT_GT(a.pes_per_layer[0], a.pes_per_layer[1]);
}

TEST(Allocate, BalancedMinimaxBeatsUniform) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload(0.5, 0.01);
  const Allocation bal = allocate(ws, dev, AllocationPolicy::kBalanced);
  const Allocation uni = allocate(ws, dev, AllocationPolicy::kUniform);
  const auto stage = [&](const Allocation& a) {
    double worst = 0.0;
    for (std::size_t i = 0; i < ws.size(); ++i)
      worst = std::max(
          worst, stage_cycles_for(ws[i].sparse_synops(),
                                  ws[i].avg_input_spikes, ws[i].neurons,
                                  a.pes(i)));
    return worst;
  };
  EXPECT_LE(stage(bal), stage(uni));
}

TEST(Allocate, SparseVsDensePolicyDiffersUnderSkewedSparsity) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  // Dense sizes equal, but measured sparsity wildly different: the
  // sparsity-aware mapping must shift PEs away from the quiet layer.
  auto ws = two_layer_workload();
  ws[1].input_size = ws[0].input_size;
  ws[1].fanout = ws[0].fanout;
  ws[1].neurons = ws[0].neurons;
  ws[0].avg_input_spikes = 0.5 * static_cast<double>(ws[0].input_size);
  ws[1].avg_input_spikes = 0.05 * static_cast<double>(ws[1].input_size);
  const Allocation sparse = allocate(ws, dev, AllocationPolicy::kBalanced);
  const Allocation dense = allocate(ws, dev, AllocationPolicy::kBalancedDense);
  EXPECT_GT(sparse.pes_per_layer[0], sparse.pes_per_layer[1]);
  // Dense policy sees symmetric workloads -> near-equal split.
  EXPECT_NEAR(static_cast<double>(dense.pes_per_layer[0]),
              static_cast<double>(dense.pes_per_layer[1]),
              static_cast<double>(dense.total_pes) * 0.02 + 2.0);
}

TEST(Allocate, BramOverflowThrows) {
  const auto dev = kintex_ultrascale_plus_ku3p();
  auto ws = two_layer_workload();
  ws[0].num_weights = 100'000'000;  // 100 MB of weights cannot fit
  EXPECT_THROW(allocate(ws, dev, AllocationPolicy::kBalanced),
               InvalidArgument);
}

TEST(Perf, StageCyclesMonotoneInPes) {
  double prev = 1e300;
  for (std::int64_t pes : {1, 2, 4, 8, 16, 64}) {
    const double c = stage_cycles_for(1e6, 1000.0, 1000, pes);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(Perf, DispatchBoundBindsWhenPesAbound) {
  // With overwhelming PE counts the event-decode bandwidth becomes the
  // floor: cycles stop improving once ceil(events/ports) dominates.
  const double many_pes = stage_cycles_for(1e4, 4000.0, 0, 100000);
  EXPECT_DOUBLE_EQ(many_pes, calib::kStageOverheadCycles +
                                 std::ceil(4000.0 / calib::kDispatchPorts));
}

TEST(Perf, EventDrivenBeatsDense) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload(0.1, 0.1);
  const Allocation a = allocate(ws, dev, AllocationPolicy::kBalanced);
  const auto ev = analyze(ws, a, dev, 10, ComputeMode::kEventDriven);
  const auto de = analyze(ws, a, dev, 10, ComputeMode::kDense);
  EXPECT_LT(ev.stage_cycles, de.stage_cycles);
  EXPECT_GT(ev.throughput_fps, de.throughput_fps);
  EXPECT_GT(ev.fps_per_watt, de.fps_per_watt);
}

TEST(Perf, SparserModelIsFasterAndMoreEfficient) {
  // The paper's core causal chain: fewer spikes -> fewer cycles & lower
  // dynamic power -> higher FPS/W.
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto busy = two_layer_workload(0.4, 0.4);
  const auto quiet = two_layer_workload(0.08, 0.08);
  const auto ab = allocate(busy, dev, AllocationPolicy::kBalanced);
  const auto aq = allocate(quiet, dev, AllocationPolicy::kBalanced);
  const auto rb = analyze(busy, ab, dev, 10, ComputeMode::kEventDriven);
  const auto rq = analyze(quiet, aq, dev, 10, ComputeMode::kEventDriven);
  EXPECT_LT(rq.latency_s, rb.latency_s);
  EXPECT_GT(rq.fps_per_watt, rb.fps_per_watt);
}

TEST(Perf, LatencyThroughputAlgebra) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload();
  const Allocation a = allocate(ws, dev, AllocationPolicy::kBalanced);
  const std::int64_t T = 12;
  const auto r = analyze(ws, a, dev, T, ComputeMode::kEventDriven);
  EXPECT_NEAR(r.cycles_per_inference, T * r.stage_cycles, 1e-9);
  EXPECT_NEAR(r.latency_s,
              (static_cast<double>(T) + 1.0) * r.stage_cycles / dev.clock_hz,
              1e-12);
  EXPECT_NEAR(r.throughput_fps, dev.clock_hz / r.cycles_per_inference, 1e-9);
  EXPECT_NEAR(r.fps_per_watt, r.throughput_fps / r.power.total(), 1e-9);
}

TEST(Perf, MoreTimestepsMeansSlower) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload();
  const Allocation a = allocate(ws, dev, AllocationPolicy::kBalanced);
  const auto r10 = analyze(ws, a, dev, 10, ComputeMode::kEventDriven);
  const auto r20 = analyze(ws, a, dev, 20, ComputeMode::kEventDriven);
  EXPECT_LT(r10.latency_s, r20.latency_s);
  EXPECT_GT(r10.throughput_fps, r20.throughput_fps);
}

TEST(Power, MonotoneInActivity) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto quiet = compute_power(dev, 100, 1e5, 1e4, 1e3, 1000.0);
  const auto busy = compute_power(dev, 100, 1e6, 1e4, 1e4, 1000.0);
  EXPECT_GT(busy.total(), quiet.total());
  EXPECT_GT(busy.synop_watts, quiet.synop_watts);
  EXPECT_EQ(busy.static_watts, quiet.static_watts);
}

TEST(Power, ZeroFpsIsStaticPlusClock) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto p = compute_power(dev, 64, 1e6, 1e5, 1e4, 0.0);
  EXPECT_DOUBLE_EQ(p.synop_watts, 0.0);
  EXPECT_DOUBLE_EQ(p.total(),
                   dev.static_watts + 64 * calib::kClockWattsPerPe);
}

TEST(Baseline, DenseBaselineSlowerThanSparsityAware) {
  const auto dev = kintex_ultrascale_plus_ku5p();
  const auto ws = two_layer_workload(0.1, 0.05);
  const Allocation a = allocate(ws, dev, AllocationPolicy::kBalanced);
  const auto ours = analyze(ws, a, dev, 10, ComputeMode::kEventDriven);
  const auto base = analyze_dense_baseline(ws, dev, 10);
  EXPECT_GT(ours.fps_per_watt, base.fps_per_watt);
}

TEST(Baseline, PriorWorkReferenceSane) {
  const auto ref = prior_work_reference();
  EXPECT_GT(ref.accuracy, 0.5);
  EXPECT_LT(ref.accuracy, 1.0);
  EXPECT_GT(ref.fps_per_watt, 0.0);
}

TEST(Accelerator, MapEndToEnd) {
  snn::MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = 16;
  cfg.num_classes = 4;
  auto net = snn::make_snn_mlp(cfg);
  const std::int64_t T = 6;
  auto out = net->forward(
      std::vector<Tensor>(T, Tensor::full(Shape{4, 32}, 0.8f)),
      {.record_stats = true, .record_step_nonzeros = true});

  Accelerator accel;
  const MappingReport report = accel.map(*net, out.stats, T, true);
  ASSERT_EQ(report.workloads.size(), 2u);
  EXPECT_GT(report.perf.throughput_fps, 0.0);
  EXPECT_GT(report.perf.fps_per_watt, 0.0);
  ASSERT_TRUE(report.event_sim.has_value());
  EXPECT_GT(report.event_sim->total_cycles, 0.0);
  const std::string s = report.summary();
  EXPECT_NE(s.find("fc1"), std::string::npos);
  EXPECT_NE(s.find("FPS/W"), std::string::npos);
  EXPECT_NE(s.find("event-sim"), std::string::npos);

  // The measured per-step tally (now opt-in via ForwardOptions) still feeds
  // the simulator: project it onto the mapped layers and replay it.
  SpikeTrace trace;
  for (const auto& step : out.step_input_nonzeros) {
    std::vector<std::int64_t> row;
    for (const auto& w : report.workloads)
      row.push_back(step[static_cast<std::size_t>(w.layer_index)]);
    trace.push_back(std::move(row));
  }
  const auto sim = simulate_inference(
      EventSimConfig::from(report.workloads, report.allocation,
                           accel.config().device),
      trace);
  EXPECT_GT(sim.total_cycles, 0.0);
}

}  // namespace
}  // namespace spiketune::hw
