// Crash-safety and numerical-guard-rail tests: CRC'd STK2 checkpoints,
// atomic publication, bit-identical training resume, journaled sweeps, and
// the NaN/Inf health policies.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/crc32.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/serialize.h"
#include "data/dataloader.h"
#include "data/encoders.h"
#include "exp/journal.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "snn/checkpoint.h"
#include "snn/layers.h"
#include "snn/lif.h"
#include "snn/linear.h"
#include "snn/loss.h"
#include "train/checkpoint_manager.h"
#include "train/trainer.h"

namespace spiketune {
namespace {

namespace fs = std::filesystem;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::vector<NamedTensor> sample_records(float seed) {
  std::vector<NamedTensor> records;
  records.push_back({"layer0.w", Tensor(Shape{2, 2}, {seed, 2, 3, 4})});
  records.push_back({"layer1.b", Tensor(Shape{3}, {5, 6, seed + 1})});
  return records;
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32, KnownAnswer) {
  // The CRC-32/IEEE check value for "123456789".
  const char msg[] = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(msg, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t inc = crc32_update(0, data.data(), 10);
  inc = crc32_update(inc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc, crc32(data.data(), data.size()));
}

// ---------------------------------------------------------------------------
// STK2 container

TEST(CheckpointV2, MetaRoundTrips) {
  const std::string path = tmp_path("meta_rt.stk");
  CheckpointMeta meta;
  meta.epoch = 7;
  meta.opt_step = 91;
  meta.encode_stream = 1234;
  meta.eval_calls = 3;
  meta.loader_seed = 0xda7a;
  meta.config_fingerprint = 0xfeedfacecafef00dull;
  meta.lr_scale = 0.25;
  meta.extra["optimizer"] = "adam";
  meta.extra["note"] = "hello world";
  save_checkpoint(path, sample_records(1.0f), meta);

  const Checkpoint ckpt = load_checkpoint_full(path);
  EXPECT_EQ(ckpt.version, 2u);
  ASSERT_TRUE(ckpt.meta.present);
  EXPECT_EQ(ckpt.meta.epoch, 7);
  EXPECT_EQ(ckpt.meta.opt_step, 91);
  EXPECT_EQ(ckpt.meta.encode_stream, 1234u);
  EXPECT_EQ(ckpt.meta.eval_calls, 3u);
  EXPECT_EQ(ckpt.meta.loader_seed, 0xda7aull);
  EXPECT_EQ(ckpt.meta.config_fingerprint, 0xfeedfacecafef00dull);
  EXPECT_DOUBLE_EQ(ckpt.meta.lr_scale, 0.25);
  EXPECT_EQ(ckpt.meta.extra.at("optimizer"), "adam");
  EXPECT_EQ(ckpt.meta.extra.at("note"), "hello world");
  ASSERT_EQ(ckpt.records.size(), 2u);
  EXPECT_EQ(ckpt.records[0].name, "layer0.w");
  EXPECT_FLOAT_EQ(ckpt.records[1].value[2], 2.0f);
}

TEST(CheckpointV2, NoMetaSnapshotLoadsWithPresentFalse) {
  const std::string path = tmp_path("nometa.stk");
  save_checkpoint(path, sample_records(1.0f));
  const Checkpoint ckpt = load_checkpoint_full(path);
  EXPECT_EQ(ckpt.version, 2u);
  EXPECT_FALSE(ckpt.meta.present);
}

TEST(CheckpointV1, LegacyRoundTripStillLoads) {
  const std::string path = tmp_path("legacy.stk");
  save_checkpoint_v1(path, sample_records(9.0f));
  const Checkpoint ckpt = load_checkpoint_full(path);
  EXPECT_EQ(ckpt.version, 1u);
  EXPECT_FALSE(ckpt.meta.present);
  ASSERT_EQ(ckpt.records.size(), 2u);
  EXPECT_FLOAT_EQ(ckpt.records[0].value[0], 9.0f);
  EXPECT_FLOAT_EQ(ckpt.records[1].value[2], 10.0f);
}

TEST(CheckpointCorruption, ZeroLengthFileRejected) {
  const std::string path = tmp_path("zero.stk");
  write_file(path, "");
  EXPECT_THROW(load_checkpoint(path), InvalidArgument);
}

TEST(CheckpointCorruption, WrongMagicRejected) {
  const std::string path = tmp_path("magic.stk");
  write_file(path, "NOTACHECKPOINTFILE--------------");
  EXPECT_THROW(load_checkpoint(path), InvalidArgument);
}

TEST(CheckpointCorruption, TruncationRejectedAtEveryLength) {
  const std::string path = tmp_path("trunc.stk");
  save_checkpoint(path, sample_records(1.0f));
  const std::string full = read_file(path);
  ASSERT_GT(full.size(), 16u);
  // Chop at a spread of offsets, including just-shy-of-complete.
  for (std::size_t keep :
       {std::size_t{1}, std::size_t{4}, full.size() / 4, full.size() / 2,
        full.size() - 5, full.size() - 1}) {
    const std::string trunc_path = tmp_path("trunc_cut.stk");
    write_file(trunc_path, full.substr(0, keep));
    EXPECT_THROW(load_checkpoint(trunc_path), InvalidArgument)
        << "kept " << keep << " of " << full.size() << " bytes";
  }
}

TEST(CheckpointCorruption, EveryBitFlipIsCaughtByCrc) {
  const std::string path = tmp_path("flip.stk");
  save_checkpoint(path, sample_records(1.0f));
  const std::string full = read_file(path);
  // Flip one bit in every byte position; the CRC (or a sanity bound hit
  // before it) must reject all of them.
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    const std::string bad_path = tmp_path("flip_bad.stk");
    write_file(bad_path, bad);
    EXPECT_THROW(load_checkpoint(bad_path), InvalidArgument)
        << "flip at byte " << i;
  }
}

TEST(AtomicCheckpoint, KillBeforeRenameLeavesPreviousFileIntact) {
  const std::string path = tmp_path("atomic.stk");
  save_checkpoint(path, sample_records(1.0f));
  testing::checkpoint_pre_rename_hook = [] {
    throw std::runtime_error("simulated kill before rename");
  };
  EXPECT_THROW(save_checkpoint(path, sample_records(100.0f)),
               std::runtime_error);
  testing::checkpoint_pre_rename_hook = nullptr;

  // The previous checkpoint is fully readable and no temp file is left.
  const auto records = load_checkpoint(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FLOAT_EQ(records[0].value[0], 1.0f);
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // And a non-killed retry publishes the new contents.
  save_checkpoint(path, sample_records(100.0f));
  EXPECT_FLOAT_EQ(load_checkpoint(path)[0].value[0], 100.0f);
}

// ---------------------------------------------------------------------------
// Checkpoint directory management

TEST(CheckpointManager, NamingListingAndRetention) {
  const std::string dir = tmp_path("mgr_dir");
  fs::remove_all(dir);
  train::CheckpointManager mgr(dir, /*keep_last=*/2);
  ASSERT_TRUE(mgr.enabled());
  EXPECT_EQ(mgr.path_for_epoch(7), dir + "/ckpt-000007.stk");
  EXPECT_EQ(train::CheckpointManager::epoch_of("ckpt-000042.stk"), 42);
  EXPECT_FALSE(train::CheckpointManager::epoch_of("weights.bin").has_value());
  EXPECT_FALSE(mgr.latest().has_value());

  for (std::int64_t e : {3, 1, 2})
    save_checkpoint(mgr.path_for_epoch(e), sample_records(float(e)));
  // A stray non-checkpoint file must never be touched or listed.
  write_file(dir + "/notes.txt", "keep me");

  const auto all = mgr.list();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front(), mgr.path_for_epoch(1));
  EXPECT_EQ(all.back(), mgr.path_for_epoch(3));
  EXPECT_EQ(mgr.latest(), mgr.path_for_epoch(3));

  mgr.prune();
  const auto kept = mgr.list();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.front(), mgr.path_for_epoch(2));
  EXPECT_EQ(kept.back(), mgr.path_for_epoch(3));
  EXPECT_TRUE(fs::exists(dir + "/notes.txt"));
}

// ---------------------------------------------------------------------------
// Optimizer state round trip

TEST(OptimizerState, AdamExportImportContinuesBitIdentically) {
  auto make_param = [] {
    return snn::Param("w", Tensor(Shape{3}, {0.5f, -1.0f, 2.0f}));
  };
  auto step_with_grad = [](train::Adam& opt, snn::Param& p, float g) {
    p.grad = Tensor(Shape{3}, {g, -g, 0.5f * g});
    opt.step();
  };

  // Reference: six uninterrupted steps.
  snn::Param ref = make_param();
  train::Adam ref_opt({&ref}, 1e-2);
  for (int i = 0; i < 6; ++i) step_with_grad(ref_opt, ref, 0.1f * (i + 1));

  // Interrupted: three steps, export, import into a fresh Adam, three more.
  snn::Param p = make_param();
  std::vector<NamedTensor> records;
  {
    train::Adam opt({&p}, 1e-2);
    for (int i = 0; i < 3; ++i) step_with_grad(opt, p, 0.1f * (i + 1));
    opt.export_state("opt.", records);
    EXPECT_EQ(opt.step_count(), 3);
  }
  train::Adam resumed({&p}, 1e-2);
  resumed.import_state("opt.", records);
  resumed.set_step_count(3);
  for (int i = 3; i < 6; ++i) step_with_grad(resumed, p, 0.1f * (i + 1));

  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(p.value[i], ref.value[i]) << "weight " << i;  // bit-identical
}

TEST(OptimizerState, ImportRejectsMismatchedState) {
  snn::Param a("w", Tensor(Shape{3}));
  snn::Param b("w", Tensor(Shape{4}));
  std::vector<NamedTensor> records;
  train::Adam src({&a}, 1e-2);
  src.export_state("opt.", records);
  train::Adam dst({&b}, 1e-2);
  EXPECT_THROW(dst.import_state("opt.", records), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Trainer resume: bit-identical interrupted-vs-straight runs

// Trivially separable task (left half lit = class 0, right half = class 1).
class ToyDataset final : public data::Dataset {
 public:
  explicit ToyDataset(std::int64_t n) : n_(n) {}
  std::int64_t size() const override { return n_; }
  int num_classes() const override { return 2; }
  Shape image_shape() const override { return Shape{1, 4, 4}; }
  data::Example get(std::int64_t i) const override {
    data::Example ex;
    ex.label = static_cast<int>(i % 2);
    ex.image = Tensor(Shape{1, 4, 4});
    Rng rng = Rng(999).fork(static_cast<std::uint64_t>(i));
    for (std::int64_t y = 0; y < 4; ++y)
      for (std::int64_t x = 0; x < 4; ++x) {
        const bool hot = (ex.label == 0) ? (x < 2) : (x >= 2);
        ex.image.at({0, y, x}) =
            hot ? static_cast<float>(rng.uniform(0.7, 1.0))
                : static_cast<float>(rng.uniform(0.0, 0.15));
      }
    return ex;
  }

 private:
  std::int64_t n_;
};

std::unique_ptr<snn::SpikingNetwork> make_toy_net() {
  snn::LifConfig lif;
  lif.beta = 0.5f;
  lif.threshold = 0.5f;
  lif.surrogate = snn::Surrogate::fast_sigmoid(2.0f);
  auto net = std::make_unique<snn::SpikingNetwork>();
  net->add<snn::Flatten>();
  Rng rng(123);
  net->add<snn::Linear>(snn::LinearConfig{16, 16}, rng);
  net->add<snn::Lif>(lif);
  net->add<snn::Linear>(snn::LinearConfig{16, 2}, rng);
  net->add<snn::Lif>(lif);
  return net;
}

train::TrainerConfig toy_trainer_config(int threads) {
  train::TrainerConfig tcfg;
  tcfg.epochs = 6;
  tcfg.num_steps = 8;
  tcfg.batch_size = 16;
  tcfg.base_lr = 5e-3;
  tcfg.verbose = false;
  tcfg.threads = threads;
  return tcfg;
}

std::vector<float> weight_snapshot(snn::SpikingNetwork& net) {
  std::vector<float> out;
  for (snn::Param* p : net.params())
    out.insert(out.end(), p->value.data(), p->value.data() + p->numel());
  return out;
}

struct ToyRunResult {
  std::vector<float> weights;
  train::EvalMetrics eval;
};

// Trains the toy task for 6 epochs; when `interrupt` is set, stops after 3
// epochs and resumes in a fresh Trainer/net/loader (a simulated process
// restart) for the rest.
ToyRunResult run_toy_training(int threads, const std::string& ckpt_dir,
                              bool interrupt) {
  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(ToyDataset(64)));
  data::RateEncoder encoder(42);
  snn::RateCrossEntropyLoss loss(8.0);
  auto tcfg = toy_trainer_config(threads);
  tcfg.checkpoint_dir = ckpt_dir;
  tcfg.keep_last = 2;

  if (interrupt) {
    data::DataLoader loader(ds, 16, true, 7);
    auto net = make_toy_net();
    auto leg1 = tcfg;
    leg1.stop_after_epochs = 3;
    train::Trainer trainer(*net, encoder, loss, leg1);
    trainer.fit(loader);
  }

  data::DataLoader loader(ds, 16, true, 7);
  auto net = make_toy_net();
  auto leg2 = tcfg;
  leg2.resume = interrupt;
  train::Trainer trainer(*net, encoder, loss, leg2);
  std::vector<std::int64_t> epochs_run;
  trainer.fit(loader, [&](const train::EpochMetrics& m) {
    epochs_run.push_back(m.epoch);
  });
  if (interrupt) {
    // Prove the resume actually restored position: only epochs 3..5 ran in
    // the second leg (guards against silently retraining from scratch,
    // which would also produce matching final weights).
    EXPECT_EQ(epochs_run, (std::vector<std::int64_t>{3, 4, 5}));
  } else {
    EXPECT_EQ(epochs_run.size(), 6u);
  }

  ToyRunResult result;
  result.weights = weight_snapshot(*net);
  data::DataLoader eval_loader(ds, 16, false);
  result.eval = trainer.evaluate(eval_loader);
  return result;
}

TEST(TrainerResume, InterruptedRunIsBitIdenticalAcrossThreadCounts) {
  const std::string base = tmp_path("resume_bitident");
  fs::remove_all(base);

  const auto straight1 = run_toy_training(1, base + "/straight1", false);
  const auto resumed1 = run_toy_training(1, base + "/resumed1", true);
  const auto straight4 = run_toy_training(4, base + "/straight4", false);
  const auto resumed4 = run_toy_training(4, base + "/resumed4", true);

  ASSERT_EQ(straight1.weights.size(), resumed1.weights.size());
  for (std::size_t i = 0; i < straight1.weights.size(); ++i) {
    EXPECT_EQ(straight1.weights[i], resumed1.weights[i]) << "weight " << i;
    EXPECT_EQ(straight1.weights[i], straight4.weights[i]) << "weight " << i;
    EXPECT_EQ(straight1.weights[i], resumed4.weights[i]) << "weight " << i;
  }
  EXPECT_DOUBLE_EQ(straight1.eval.accuracy, resumed1.eval.accuracy);
  EXPECT_DOUBLE_EQ(straight1.eval.loss, resumed1.eval.loss);
  EXPECT_DOUBLE_EQ(straight1.eval.firing_rate, resumed1.eval.firing_rate);
  EXPECT_DOUBLE_EQ(straight1.eval.accuracy, resumed4.eval.accuracy);
  EXPECT_DOUBLE_EQ(straight1.eval.firing_rate, straight4.eval.firing_rate);

  // Retention: keep_last=2 bounds each checkpoint directory.
  train::CheckpointManager mgr(base + "/resumed1", 2);
  EXPECT_LE(mgr.list().size(), 2u);
  EXPECT_TRUE(mgr.latest().has_value());
}

TEST(TrainerResume, FingerprintMismatchRefusesToResume) {
  const std::string dir = tmp_path("resume_fpr");
  fs::remove_all(dir);
  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(ToyDataset(32)));
  data::RateEncoder encoder(42);
  snn::RateCrossEntropyLoss loss(8.0);

  {
    data::DataLoader loader(ds, 16, true, 7);
    auto net = make_toy_net();
    auto tcfg = toy_trainer_config(1);
    tcfg.checkpoint_dir = dir;
    tcfg.stop_after_epochs = 1;
    train::Trainer trainer(*net, encoder, loss, tcfg);
    trainer.fit(loader);
  }

  data::DataLoader loader(ds, 16, true, 7);
  auto net = make_toy_net();
  auto tcfg = toy_trainer_config(1);
  tcfg.checkpoint_dir = dir;
  tcfg.resume = true;
  tcfg.base_lr = 6e-3;  // a different trajectory: refuse the checkpoint
  train::Trainer trainer(*net, encoder, loss, tcfg);
  EXPECT_THROW(trainer.fit(loader), InvalidArgument);
}

TEST(TrainerResume, PlainWeightSnapshotIsRejected) {
  const std::string dir = tmp_path("resume_plain");
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto net = make_toy_net();
  // A weights-only snapshot (no resume metadata) masquerading as a
  // training checkpoint.
  snn::save_network(dir + "/ckpt-000001.stk", *net);

  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(ToyDataset(32)));
  data::DataLoader loader(ds, 16, true, 7);
  data::RateEncoder encoder(42);
  snn::RateCrossEntropyLoss loss(8.0);
  auto net2 = make_toy_net();
  auto tcfg = toy_trainer_config(1);
  tcfg.checkpoint_dir = dir;
  tcfg.resume = true;
  train::Trainer trainer(*net2, encoder, loss, tcfg);
  EXPECT_THROW(trainer.fit(loader), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Numerical health monitor

struct ToyTrainingRig {
  std::shared_ptr<data::InMemoryDataset> ds;
  data::RateEncoder encoder{42};
  snn::RateCrossEntropyLoss loss{8.0};
  std::unique_ptr<snn::SpikingNetwork> net;

  ToyTrainingRig()
      : ds(std::make_shared<data::InMemoryDataset>(
            data::InMemoryDataset::from(ToyDataset(32)))),
        net(make_toy_net()) {}

  data::DataLoader loader() { return data::DataLoader(ds, 16, true, 7); }
};

struct HookGuard {
  ~HookGuard() {
    train::testing::force_nan_loss = nullptr;
    train::testing::force_nan_grad = nullptr;
  }
};

TEST(HealthMonitor, ThrowPolicyRaisesOnNanLoss) {
  ToyTrainingRig rig;
  HookGuard guard;
  train::testing::force_nan_loss = [](std::int64_t epoch, std::int64_t batch) {
    return epoch == 0 && batch == 1;
  };
  auto tcfg = toy_trainer_config(1);
  train::Trainer trainer(*rig.net, rig.encoder, rig.loss, tcfg);
  auto loader = rig.loader();
  EXPECT_THROW(trainer.fit(loader), NumericalError);
}

TEST(HealthMonitor, ThrowPolicyRaisesOnInfGradient) {
  ToyTrainingRig rig;
  HookGuard guard;
  train::testing::force_nan_grad = [](std::int64_t epoch, std::int64_t batch) {
    return epoch == 0 && batch == 0;
  };
  auto tcfg = toy_trainer_config(1);
  train::Trainer trainer(*rig.net, rig.encoder, rig.loss, tcfg);
  auto loader = rig.loader();
  EXPECT_THROW(trainer.fit(loader), NumericalError);
}

TEST(HealthMonitor, SkipBatchPolicyDropsTheBatchAndFinishes) {
  ToyTrainingRig rig;
  HookGuard guard;
  int poisoned = 0;
  train::testing::force_nan_loss = [&](std::int64_t epoch,
                                       std::int64_t batch) {
    if (epoch == 1 && batch == 0) {
      ++poisoned;
      return true;
    }
    return false;
  };
  auto tcfg = toy_trainer_config(1);
  tcfg.nan_policy = train::NanPolicy::kSkipBatch;
  train::Trainer trainer(*rig.net, rig.encoder, rig.loss, tcfg);
  auto loader = rig.loader();
  std::size_t epochs_seen = 0;
  trainer.fit(loader, [&](const train::EpochMetrics&) { ++epochs_seen; });
  EXPECT_EQ(poisoned, 1);
  EXPECT_EQ(epochs_seen, 6u);  // the run survives the bad batch
  for (snn::Param* p : rig.net->params())
    for (std::int64_t i = 0; i < p->numel(); ++i)
      ASSERT_TRUE(std::isfinite(p->value.data()[i]));
}

TEST(HealthMonitor, RollbackRestoresCheckpointAndCutsLr) {
  const std::string dir = tmp_path("rollback_dir");
  fs::remove_all(dir);
  ToyTrainingRig rig;
  HookGuard guard;
  bool fired = false;
  train::testing::force_nan_grad = [&](std::int64_t epoch,
                                       std::int64_t batch) {
    if (!fired && epoch == 1 && batch == 0) {
      fired = true;
      return true;
    }
    return false;
  };
  auto tcfg = toy_trainer_config(1);
  tcfg.nan_policy = train::NanPolicy::kRollback;
  tcfg.checkpoint_dir = dir;
  train::Trainer trainer(*rig.net, rig.encoder, rig.loss, tcfg);
  auto loader = rig.loader();
  std::vector<double> lrs;
  trainer.fit(loader, [&](const train::EpochMetrics& m) {
    lrs.push_back(m.lr);
  });
  EXPECT_TRUE(fired);
  ASSERT_EQ(lrs.size(), 6u);  // every epoch completed despite the blow-up

  // Clean reference run: identical schedule, no fault.
  ToyTrainingRig clean;
  auto clean_cfg = toy_trainer_config(1);
  train::Trainer clean_trainer(*clean.net, clean.encoder, clean.loss,
                               clean_cfg);
  auto clean_loader = clean.loader();
  std::vector<double> clean_lrs;
  clean_trainer.fit(clean_loader, [&](const train::EpochMetrics& m) {
    clean_lrs.push_back(m.lr);
  });
  EXPECT_DOUBLE_EQ(lrs[0], clean_lrs[0]);  // before the fault: untouched
  // From the rollback on, the LR runs at half the schedule.
  for (std::size_t e = 1; e < 6; ++e)
    EXPECT_DOUBLE_EQ(lrs[e], 0.5 * clean_lrs[e]) << "epoch " << e;
}

TEST(HealthMonitor, RollbackWithoutCheckpointFailsLoudly) {
  ToyTrainingRig rig;
  HookGuard guard;
  train::testing::force_nan_grad = [](std::int64_t, std::int64_t) {
    return true;
  };
  auto tcfg = toy_trainer_config(1);
  tcfg.nan_policy = train::NanPolicy::kRollback;  // but no checkpoint_dir
  train::Trainer trainer(*rig.net, rig.encoder, rig.loss, tcfg);
  auto loader = rig.loader();
  EXPECT_THROW(trainer.fit(loader), NumericalError);
}

TEST(HealthMonitor, RollbackLimitExhaustionRaises) {
  const std::string dir = tmp_path("rollback_limit");
  fs::remove_all(dir);
  ToyTrainingRig rig;
  HookGuard guard;
  // Epoch 1 always blows up: rollback can never make progress.
  train::testing::force_nan_grad = [](std::int64_t epoch, std::int64_t) {
    return epoch == 1;
  };
  auto tcfg = toy_trainer_config(1);
  tcfg.nan_policy = train::NanPolicy::kRollback;
  tcfg.checkpoint_dir = dir;
  tcfg.max_rollbacks = 2;
  train::Trainer trainer(*rig.net, rig.encoder, rig.loss, tcfg);
  auto loader = rig.loader();
  EXPECT_THROW(trainer.fit(loader), NumericalError);
}

TEST(NanPolicy, NamesRoundTrip) {
  EXPECT_EQ(train::nan_policy_by_name("throw"), train::NanPolicy::kThrow);
  EXPECT_EQ(train::nan_policy_by_name("skip-batch"),
            train::NanPolicy::kSkipBatch);
  EXPECT_EQ(train::nan_policy_by_name("rollback"),
            train::NanPolicy::kRollback);
  EXPECT_STREQ(train::nan_policy_name(train::NanPolicy::kSkipBatch),
               "skip-batch");
  EXPECT_THROW(train::nan_policy_by_name("explode"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Sweep journal

TEST(SweepJournal, RecordsReplaysAndLastEntryWins) {
  const std::string path = tmp_path("journal_rt.jsonl");
  fs::remove(path);
  exp::ExperimentResult result;
  result.accuracy = 0.75;
  result.loss = 1.25;
  result.fps_per_watt = 321.5;
  {
    exp::SweepJournal journal(path);
    EXPECT_EQ(journal.size(), 0u);
    journal.record_failed("point a", "numerical blow-up \"quoted\"\nline2");
    journal.record_done("point b", result);
    journal.record_done("point a", result);  // later success supersedes
  }
  exp::SweepJournal replay(path);
  EXPECT_EQ(replay.size(), 3u);
  const exp::JournalEntry* a = replay.find("point a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, "done");  // last entry for the key wins
  const exp::JournalEntry* b = replay.find("point b");
  ASSERT_NE(b, nullptr);
  const auto restored = exp::SweepJournal::to_result(*b);
  EXPECT_DOUBLE_EQ(restored.accuracy, 0.75);
  EXPECT_DOUBLE_EQ(restored.loss, 1.25);
  EXPECT_DOUBLE_EQ(restored.fps_per_watt, 321.5);
  EXPECT_EQ(replay.find("point c"), nullptr);
}

TEST(SweepJournal, DisabledJournalIsANoOp) {
  exp::SweepJournal journal;
  EXPECT_FALSE(journal.enabled());
  journal.record_failed("x", "err");
  EXPECT_EQ(journal.size(), 0u);
}

TEST(SweepJournal, TornFinalLineRejectedOnReplay) {
  const std::string path = tmp_path("journal_torn.jsonl");
  write_file(path,
             "{\"key\":\"a\",\"status\":\"done\",\"accuracy\":0.5}\n"
             "{\"key\":\"b\",\"status\":\"do");  // torn mid-write
  EXPECT_THROW(exp::SweepJournal journal(path), InvalidArgument);
}

exp::ExperimentConfig tiny_experiment_config() {
  auto cfg = exp::ExperimentConfig::for_profile(exp::Profile::kSmoke);
  cfg.train_size = 64;
  cfg.test_size = 32;
  cfg.trainer.epochs = 1;
  cfg.trainer.num_steps = 2;
  cfg.model.lif.surrogate = snn::Surrogate::fast_sigmoid(0.25f);
  return cfg;
}

TEST(JournaledSweep, FailedPointIsRecordedAndSweepContinues) {
  const std::string journal = tmp_path("sweep_journal.jsonl");
  const std::string ckpt_root = tmp_path("sweep_ckpts");
  fs::remove(journal);
  fs::remove_all(ckpt_root);
  const auto cfg = tiny_experiment_config();

  exp::SweepOptions options;
  options.journal_path = journal;
  options.checkpoint_root = ckpt_root;
  // "bogus" is not a surrogate name: that point must fail without sinking
  // the rest of the sweep.
  const auto points = exp::run_surrogate_sweep(cfg, {"arctan", "bogus"},
                                               {1.0}, {}, options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].status, "done");
  EXPECT_FALSE(points[0].from_journal);
  EXPECT_GT(points[0].result.accuracy, 0.0);
  EXPECT_EQ(points[1].status, "failed");
  EXPECT_NE(points[1].error.find("bogus"), std::string::npos);
  // Per-point checkpoints landed under a sanitized key directory.
  EXPECT_TRUE(fs::exists(ckpt_root + "/arctan_scale_1"));

  // Restart with resume: the done point is restored, not retrained; the
  // failed point is re-attempted (and fails again).
  const auto again = exp::run_surrogate_sweep(cfg, {"arctan", "bogus"},
                                              {1.0}, {}, [&] {
                                                auto o = options;
                                                o.resume = true;
                                                return o;
                                              }());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_TRUE(again[0].from_journal);
  EXPECT_DOUBLE_EQ(again[0].result.accuracy, points[0].result.accuracy);
  EXPECT_DOUBLE_EQ(again[0].result.fps_per_watt,
                   points[0].result.fps_per_watt);
  EXPECT_EQ(again[1].status, "failed");

  exp::SweepJournal replay(journal);
  EXPECT_EQ(replay.size(), 3u);  // done + failed + failed-again
}

TEST(JournaledSweep, BetaThetaSweepJournalsToo) {
  const std::string journal = tmp_path("sweep_bt_journal.jsonl");
  fs::remove(journal);
  const auto cfg = tiny_experiment_config();
  exp::SweepOptions options;
  options.journal_path = journal;
  const auto points =
      exp::run_beta_theta_sweep(cfg, {0.5}, {1.0}, {}, options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].status, "done");

  options.resume = true;
  const auto again = exp::run_beta_theta_sweep(cfg, {0.5}, {1.0}, {}, options);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].from_journal);
  EXPECT_DOUBLE_EQ(again[0].result.accuracy, points[0].result.accuracy);
}

// ---------------------------------------------------------------------------
// Config validation and failure-aware reporting

TEST(ValidateConfig, RejectsBadSelectionsUpFront) {
  const auto good = tiny_experiment_config();
  EXPECT_NO_THROW(exp::validate(good));

  auto bad = good;
  bad.encoder = "morse";
  EXPECT_THROW(exp::validate(bad), InvalidArgument);

  bad = good;
  bad.loss = "hinge";
  EXPECT_THROW(exp::validate(bad), InvalidArgument);

  bad = good;
  bad.dataset = "imagenet";
  EXPECT_THROW(exp::validate(bad), InvalidArgument);

  bad = good;
  bad.dataset = "digits";  // digits needs in_channels == 1
  EXPECT_THROW(exp::validate(bad), InvalidArgument);

  bad = good;
  bad.model.image_size = good.image_size + 4;
  EXPECT_THROW(exp::validate(bad), InvalidArgument);

  bad = good;
  bad.trainer.checkpoint_every = 0;
  EXPECT_THROW(exp::validate(bad), InvalidArgument);
}

TEST(ValidateConfig, SweepFailsFastOnInvalidBaseConfig) {
  auto bad = tiny_experiment_config();
  bad.loss = "hinge";
  // The whole sweep must refuse upfront (before training anything), not
  // record every point as failed.
  EXPECT_THROW(
      exp::run_surrogate_sweep(bad, {"arctan"}, {1.0}, {}, {}),
      InvalidArgument);
}

std::vector<exp::BetaThetaPoint> mixed_status_points() {
  std::vector<exp::BetaThetaPoint> points(3);
  points[0].beta = 0.25;
  points[0].theta = 1.0;
  points[0].result.accuracy = 0.8;
  points[0].result.latency_us = 100.0;
  points[1].beta = 0.5;
  points[1].theta = 1.5;
  points[1].result.accuracy = 0.99;  // would win, but it failed
  points[1].status = "failed";
  points[1].error = "simulated divergence";
  points[2].beta = 0.7;
  points[2].theta = 1.5;
  points[2].result.accuracy = 0.79;
  points[2].result.latency_us = 50.0;
  return points;
}

TEST(FailureAwareReports, SelectionSkipsFailedPoints) {
  const auto points = mixed_status_points();
  EXPECT_EQ(exp::best_accuracy_index(points), 0u);
  EXPECT_EQ(exp::latency_knee_index(points, 0.035), 2u);

  auto all_failed = points;
  for (auto& p : all_failed) p.status = "failed";
  EXPECT_THROW(exp::best_accuracy_index(all_failed), InvalidArgument);
}

TEST(FailureAwareReports, RenderMarksFailuresAndCsvCarriesStatus) {
  const auto points = mixed_status_points();
  const std::string rendered = exp::render_fig2(points);
  EXPECT_NE(rendered.find("fail"), std::string::npos);
  EXPECT_NE(rendered.find("simulated divergence"), std::string::npos);

  const std::string csv_path = tmp_path("fig2_status.csv");
  exp::write_fig2_csv(points, csv_path);
  const std::string csv = read_file(csv_path);
  EXPECT_NE(csv.find("status"), std::string::npos);
  EXPECT_NE(csv.find("failed"), std::string::npos);
}

TEST(SweepFlags, ParseDoubleList) {
  const auto parsed = exp::parse_double_list("0.5,1,32");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed[0], 0.5);
  EXPECT_DOUBLE_EQ(parsed[2], 32.0);
  EXPECT_THROW(exp::parse_double_list("1,,2"), InvalidArgument);
  EXPECT_THROW(exp::parse_double_list("1,abc"), InvalidArgument);
  EXPECT_THROW(exp::parse_double_list(""), InvalidArgument);
}

}  // namespace
}  // namespace spiketune
