// LIF neuron dynamics (paper Eq. 1-2) and BPTT gradient checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "snn/lif.h"
#include "tensor/gradcheck.h"
#include "tensor/tensor_ops.h"

namespace spiketune::snn {
namespace {

LifConfig config(float beta, float theta,
                 Surrogate sg = Surrogate::fast_sigmoid(25.0f)) {
  LifConfig c;
  c.beta = beta;
  c.threshold = theta;
  c.surrogate = sg;
  return c;
}

Tensor scalar_input(float v) { return Tensor(Shape{1, 1}, {v}); }

TEST(Lif, SubThresholdIntegrationDecays) {
  // With theta = 10, constant input 1 never fires: u_t = sum beta^i.
  Lif lif(config(0.5f, 10.0f));
  lif.begin_window(1, false);
  float expected = 0.0f;
  for (int t = 0; t < 5; ++t) {
    Tensor s = lif.forward_step(scalar_input(1.0f));
    expected = 0.5f * expected + 1.0f;
    EXPECT_EQ(s[0], 0.0f) << "unexpected spike at t=" << t;
  }
  EXPECT_EQ(lif.window_spike_count(), 0);
}

TEST(Lif, FiresWhenAboveThreshold) {
  Lif lif(config(0.0f, 0.5f));
  lif.begin_window(1, false);
  Tensor s = lif.forward_step(scalar_input(1.0f));
  EXPECT_EQ(s[0], 1.0f);
  EXPECT_EQ(lif.window_spike_count(), 1);
}

TEST(Lif, StrictThresholdComparison) {
  // Eq. 2: spike iff u > theta (strict).
  Lif lif(config(0.0f, 1.0f));
  lif.begin_window(1, false);
  EXPECT_EQ(lif.forward_step(scalar_input(1.0f))[0], 0.0f);
  lif.begin_window(1, false);
  EXPECT_EQ(lif.forward_step(scalar_input(1.0f + 1e-4f))[0], 1.0f);
}

TEST(Lif, ResetBySubtractionKeepsResidual) {
  // u = 1.7, theta = 1 -> spike; residual u_post = 0.7 carried via beta = 1.
  Lif lif(config(1.0f, 1.0f));
  lif.begin_window(1, false);
  Tensor s1 = lif.forward_step(scalar_input(1.7f));
  EXPECT_EQ(s1[0], 1.0f);
  // Next step zero input: u = 0.7 -> no spike; then +0.4 -> 1.1 -> spike.
  Tensor s2 = lif.forward_step(scalar_input(0.0f));
  EXPECT_EQ(s2[0], 0.0f);
  Tensor s3 = lif.forward_step(scalar_input(0.4f));
  EXPECT_EQ(s3[0], 1.0f);
}

TEST(Lif, HigherBetaFiresMoreWithSameInput) {
  // Paper: higher beta retains more state -> more likely to fire.
  auto spikes_with_beta = [](float beta) {
    Lif lif(config(beta, 1.0f));
    lif.begin_window(1, false);
    std::int64_t count = 0;
    for (int t = 0; t < 50; ++t)
      count += static_cast<std::int64_t>(
          lif.forward_step(scalar_input(0.3f))[0]);
    return count;
  };
  EXPECT_GT(spikes_with_beta(0.9f), spikes_with_beta(0.3f));
}

TEST(Lif, LowerThresholdFiresMore) {
  // Paper: lower theta reduces the potential required to fire.
  auto spikes_with_theta = [](float theta) {
    Lif lif(config(0.5f, theta));
    lif.begin_window(1, false);
    std::int64_t count = 0;
    for (int t = 0; t < 50; ++t)
      count += static_cast<std::int64_t>(
          lif.forward_step(scalar_input(0.6f))[0]);
    return count;
  };
  EXPECT_GT(spikes_with_theta(0.8f), spikes_with_theta(2.0f));
}

TEST(Lif, PeriodicFiringRateMatchesTheory) {
  // beta = 1 (no leak), constant input c < theta: fires every
  // ceil(theta/c) steps asymptotically (reset by subtraction conserves
  // charge).  Rate over a long window -> c / theta.
  Lif lif(config(1.0f, 1.0f));
  lif.begin_window(1, false);
  const int T = 1000;
  const float c = 0.24f;
  std::int64_t count = 0;
  for (int t = 0; t < T; ++t)
    count += static_cast<std::int64_t>(lif.forward_step(scalar_input(c))[0]);
  EXPECT_NEAR(static_cast<double>(count) / T, 0.24, 0.01);
}

TEST(Lif, WindowStateResets) {
  Lif lif(config(1.0f, 1.0f));
  lif.begin_window(1, false);
  lif.forward_step(scalar_input(0.9f));
  // New window: membrane must start from zero again.
  lif.begin_window(1, false);
  Tensor s = lif.forward_step(scalar_input(0.9f));
  EXPECT_EQ(s[0], 0.0f);
  EXPECT_EQ(lif.window_spike_count(), 0);
}

TEST(Lif, InputShapeChangeMidWindowThrows) {
  Lif lif(config(0.5f, 1.0f));
  lif.begin_window(1, false);
  lif.forward_step(Tensor(Shape{1, 2}));
  EXPECT_THROW(lif.forward_step(Tensor(Shape{1, 3})), InvalidArgument);
}

TEST(Lif, ConfigValidation) {
  EXPECT_THROW(Lif(config(-0.1f, 1.0f)), InvalidArgument);
  EXPECT_THROW(Lif(config(1.1f, 1.0f)), InvalidArgument);
  EXPECT_THROW(Lif(config(0.5f, 0.0f)), InvalidArgument);
}

// BPTT gradient check: the LIF backward must equal the finite-difference
// gradient of the *surrogate-relaxed* dynamics.  We verify against the
// analytically-derived recurrence instead: run backward on a 3-step window
// and compare with a hand-rolled reference implementation of
//   dL/du_pre[t] = c[t] + (g_s[t] - theta c[t]) sg'(u_pre[t]-theta),
//   c[t-1] = beta dL/du_pre[t].
TEST(Lif, BackwardMatchesHandRolledRecurrence) {
  const float beta = 0.6f;
  const float theta = 1.0f;
  const Surrogate sg = Surrogate::fast_sigmoid(5.0f);
  Lif lif(config(beta, theta, sg));

  const std::vector<float> inputs{0.8f, 0.9f, 0.4f};
  const std::vector<float> gout{0.3f, -0.2f, 0.5f};

  lif.begin_window(1, true);
  std::vector<float> u_pre(3);
  float u_post = 0.0f;
  for (int t = 0; t < 3; ++t) {
    lif.forward_step(scalar_input(inputs[static_cast<std::size_t>(t)]));
    const float up =
        beta * u_post + inputs[static_cast<std::size_t>(t)];
    u_pre[static_cast<std::size_t>(t)] = up;
    u_post = up - (up > theta ? theta : 0.0f);
  }

  lif.begin_backward();
  std::vector<float> got(3);
  for (int t = 2; t >= 0; --t) {
    Tensor g = lif.backward_step(
        scalar_input(gout[static_cast<std::size_t>(t)]));
    got[static_cast<std::size_t>(t)] = g[0];
  }

  float carry = 0.0f;
  std::vector<float> expect(3);
  for (int t = 2; t >= 0; --t) {
    const float spike_path = gout[static_cast<std::size_t>(t)] -
                             theta * carry;
    const float gi =
        carry + spike_path * sg.grad(u_pre[static_cast<std::size_t>(t)] -
                                     theta);
    expect[static_cast<std::size_t>(t)] = gi;
    carry = beta * gi;
  }
  for (int t = 0; t < 3; ++t)
    EXPECT_NEAR(got[static_cast<std::size_t>(t)],
                expect[static_cast<std::size_t>(t)], 1e-6f)
        << "t=" << t;
}

TEST(Lif, DetachResetDropsResetPath) {
  LifConfig cfg = config(0.6f, 1.0f, Surrogate::fast_sigmoid(5.0f));
  cfg.detach_reset = true;
  Lif lif(cfg);
  lif.begin_window(1, true);
  lif.forward_step(scalar_input(1.5f));  // fires
  lif.forward_step(scalar_input(0.5f));
  lif.begin_backward();
  // Step 1 backward: carry starts 0, gi1 = g * sg'(u1 - theta).
  Tensor g1 = lif.backward_step(scalar_input(1.0f));
  // Step 0 backward with detach: gi0 = c + g * sg'(...), where the
  // -theta*c term is absent.  Compare against manual computation.
  Tensor g0 = lif.backward_step(scalar_input(0.0f));
  const Surrogate sg = Surrogate::fast_sigmoid(5.0f);
  const float u1 = 0.6f * 0.5f + 0.5f;  // u_post0 = 1.5 - 1.0 = 0.5
  const float gi1 = 1.0f * sg.grad(u1 - 1.0f);
  const float carry = 0.6f * gi1;
  const float gi0 = carry + (0.0f /*g*/) * sg.grad(1.5f - 1.0f);
  EXPECT_NEAR(g1[0], gi1, 1e-6f);
  EXPECT_NEAR(g0[0], gi0, 1e-6f);
}

TEST(Lif, BackwardWithoutForwardThrows) {
  Lif lif(config(0.5f, 1.0f));
  lif.begin_window(1, true);
  lif.begin_backward();
  EXPECT_THROW(lif.backward_step(scalar_input(1.0f)), InvalidArgument);
}

TEST(Lif, InferenceWindowCachesNothing) {
  Lif lif(config(0.5f, 1.0f));
  lif.begin_window(1, false);
  lif.forward_step(scalar_input(2.0f));
  lif.begin_backward();
  EXPECT_THROW(lif.backward_step(scalar_input(1.0f)), InvalidArgument);
}

TEST(Lif, SpikeAndElementCountsTrack) {
  Lif lif(config(0.0f, 0.5f));
  lif.begin_window(4, false);
  Tensor batch(Shape{4, 2});
  batch.fill(1.0f);  // all fire
  lif.forward_step(batch);
  batch.fill(0.0f);  // none fire
  lif.forward_step(batch);
  EXPECT_EQ(lif.window_spike_count(), 8);
  EXPECT_EQ(lif.window_element_count(), 16);
}

}  // namespace
}  // namespace spiketune::snn
