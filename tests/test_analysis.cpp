// Tests for the analysis/deployment extensions: confusion matrices,
// hardware design-space exploration, data augmentation, weight pruning.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "data/augment.h"
#include "data/synth_digits.h"
#include "hw/dse.h"
#include "snn/model_zoo.h"
#include "snn/prune.h"
#include "tensor/tensor_ops.h"
#include "train/confusion.h"

namespace spiketune {
namespace {

// ---- ConfusionMatrix --------------------------------------------------------

TEST(Confusion, PerfectPredictions) {
  train::ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 5; ++i) cm.add(c, c);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_precision(), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_recall(), 1.0);
  EXPECT_EQ(cm.distinct_predictions(), 3);
}

TEST(Confusion, CollapseDetection) {
  train::ConfusionMatrix cm(4);
  for (int c = 0; c < 4; ++c)
    for (int i = 0; i < 3; ++i) cm.add(c, 0);  // everything -> class 0
  EXPECT_EQ(cm.distinct_predictions(), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.25);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.25);
  EXPECT_DOUBLE_EQ(cm.recall(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
}

TEST(Confusion, HandComputedCells) {
  train::ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.count(0, 0), 1);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(1, 1), 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
}

TEST(Confusion, AddBatchUsesArgmax) {
  train::ConfusionMatrix cm(3);
  Tensor counts(Shape{2, 3}, {5, 1, 0, 0, 0, 9});
  cm.add_batch(counts, {0, 1});
  EXPECT_EQ(cm.count(0, 0), 1);  // argmax row0 = 0, correct
  EXPECT_EQ(cm.count(1, 2), 1);  // argmax row1 = 2, wrong
  EXPECT_EQ(cm.total(), 2);
}

TEST(Confusion, RenderAndValidation) {
  train::ConfusionMatrix cm(2);
  cm.add(0, 0);
  const std::string s = cm.render();
  EXPECT_NE(s.find("true \\ pred"), std::string::npos);
  EXPECT_NE(s.find("accuracy="), std::string::npos);
  EXPECT_THROW(cm.add(2, 0), InvalidArgument);
  EXPECT_THROW(cm.add(0, -1), InvalidArgument);
  EXPECT_THROW(train::ConfusionMatrix(0), InvalidArgument);
}

// ---- DSE --------------------------------------------------------------------

std::vector<hw::LayerWorkload> dse_workloads() {
  std::vector<hw::LayerWorkload> ws(2);
  ws[0].name = "conv1";
  ws[0].input_size = 2048;
  ws[0].fanout = 288;
  ws[0].neurons = 8192;
  ws[0].num_weights = 9216;
  ws[0].avg_input_spikes = 0.2 * 2048;
  ws[1].name = "fc1";
  ws[1].input_size = 512;
  ws[1].fanout = 128;
  ws[1].neurons = 128;
  ws[1].num_weights = 65536;
  ws[1].avg_input_spikes = 0.1 * 512;
  return ws;
}

TEST(Dse, ExploresFullGrid) {
  hw::DseConfig cfg;
  cfg.timesteps = 16;
  const auto points = hw::explore(dse_workloads(), cfg);
  // 3 devices x 3 policies x 2 modes.
  EXPECT_EQ(points.size(), 18u);
  for (const auto& p : points) {
    EXPECT_GT(p.fps_per_watt, 0.0);
    EXPECT_GT(p.latency_s, 0.0);
    EXPECT_FALSE(p.label().empty());
  }
}

TEST(Dse, ParetoFrontIsNonDominated) {
  hw::DseConfig cfg;
  cfg.timesteps = 16;
  const auto points = hw::explore(dse_workloads(), cfg);
  const auto front = hw::pareto_front(points);
  ASSERT_FALSE(front.empty());
  EXPECT_LE(front.size(), points.size());
  // No front point dominates another front point.
  for (const auto& a : front)
    for (const auto& b : front) {
      if (&a == &b) continue;
      const bool a_dominates_b = a.latency_s <= b.latency_s &&
                                 a.fps_per_watt >= b.fps_per_watt &&
                                 (a.latency_s < b.latency_s ||
                                  a.fps_per_watt > b.fps_per_watt);
      EXPECT_FALSE(a_dominates_b);
    }
  // Sorted by latency.
  for (std::size_t i = 1; i < front.size(); ++i)
    EXPECT_LE(front[i - 1].latency_s, front[i].latency_s);
}

TEST(Dse, EventDrivenDominatesDenseSomewhere) {
  hw::DseConfig cfg;
  cfg.timesteps = 16;
  const auto front = hw::pareto_front(hw::explore(dse_workloads(), cfg));
  // With 10-20% densities the event-driven mode must appear on the front.
  bool has_event = false;
  for (const auto& p : front)
    has_event |= (p.mode == hw::ComputeMode::kEventDriven);
  EXPECT_TRUE(has_event);
}

TEST(Dse, SkipsTooSmallDevices) {
  auto ws = dse_workloads();
  ws[0].num_weights = 3'000'000;  // ~3 MB: fits ku15p (3936 KiB) only
  hw::DseConfig cfg;
  cfg.timesteps = 8;
  const auto points = hw::explore(ws, cfg);
  EXPECT_FALSE(points.empty());
  for (const auto& p : points) EXPECT_EQ(p.device, "xcku15p");
}

// ---- AugmentedDataset -------------------------------------------------------

std::shared_ptr<const data::Dataset> digits_base() {
  data::SynthDigitsConfig cfg;
  cfg.num_examples = 8;
  cfg.image_size = 12;
  return std::make_shared<data::SynthDigits>(cfg);
}

TEST(Augment, CopyZeroIsIdentity) {
  auto base = digits_base();
  data::AugmentedDataset aug(base, data::AugmentConfig{});
  EXPECT_EQ(aug.size(), base->size());
  for (std::int64_t i = 0; i < base->size(); ++i) {
    const auto a = aug.get(i);
    const auto b = base->get(i);
    EXPECT_EQ(a.label, b.label);
    for (std::int64_t k = 0; k < a.image.numel(); ++k)
      EXPECT_EQ(a.image[k], b.image[k]);
  }
}

TEST(Augment, CopiesEnlargeAndPerturb) {
  auto base = digits_base();
  data::AugmentConfig cfg;
  cfg.copies = 3;
  data::AugmentedDataset aug(base, cfg);
  EXPECT_EQ(aug.size(), 3 * base->size());
  // Copy 1 keeps the label but changes pixels.
  const auto orig = base->get(0);
  const auto jit = aug.get(base->size());
  EXPECT_EQ(jit.label, orig.label);
  float diff = 0.0f;
  for (std::int64_t k = 0; k < orig.image.numel(); ++k)
    diff += std::fabs(jit.image[k] - orig.image[k]);
  EXPECT_GT(diff, 0.0f);
  // Still valid pixel range.
  EXPECT_GE(ops::min(jit.image), 0.0f);
  EXPECT_LE(ops::max(jit.image), 1.0f);
}

TEST(Augment, Deterministic) {
  auto base = digits_base();
  data::AugmentConfig cfg;
  cfg.copies = 2;
  data::AugmentedDataset a(base, cfg);
  data::AugmentedDataset b(base, cfg);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const auto ea = a.get(i);
    const auto eb = b.get(i);
    for (std::int64_t k = 0; k < ea.image.numel(); ++k)
      EXPECT_EQ(ea.image[k], eb.image[k]);
  }
}

TEST(Augment, Validation) {
  auto base = digits_base();
  data::AugmentConfig bad;
  bad.copies = 0;
  EXPECT_THROW(data::AugmentedDataset(base, bad), InvalidArgument);
  bad = data::AugmentConfig{};
  bad.contrast = 1.0f;
  EXPECT_THROW(data::AugmentedDataset(base, bad), InvalidArgument);
}

// ---- pruning ----------------------------------------------------------------

TEST(Prune, AchievesRequestedSparsity) {
  snn::MlpConfig cfg;
  auto net = snn::make_snn_mlp(cfg);
  EXPECT_NEAR(snn::weight_sparsity(*net), 0.0, 1e-6);
  const auto report = snn::prune_network(*net, 0.5);
  EXPECT_NEAR(report.pruned_fraction, 0.5, 0.02);
  EXPECT_NEAR(snn::weight_sparsity(*net), report.pruned_fraction, 1e-9);
  EXPECT_GT(report.threshold, 0.0f);
}

TEST(Prune, KeepsLargeWeights) {
  snn::MlpConfig cfg;
  auto net = snn::make_snn_mlp(cfg);
  // Plant a sentinel large weight; pruning 60% must not touch it.
  net->params()[0]->value[0] = 42.0f;
  snn::prune_network(*net, 0.6);
  EXPECT_EQ(net->params()[0]->value[0], 42.0f);
}

TEST(Prune, ZeroFractionIsNoop) {
  snn::MlpConfig cfg;
  auto a = snn::make_snn_mlp(cfg);
  auto b = snn::make_snn_mlp(cfg);
  const auto report = snn::prune_network(*a, 0.0);
  EXPECT_EQ(report.pruned_values, 0);
  auto pa = a->params();
  auto pb = b->params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      EXPECT_EQ(pa[i]->value[k], pb[i]->value[k]);
}

TEST(Prune, Validation) {
  snn::MlpConfig cfg;
  auto net = snn::make_snn_mlp(cfg);
  EXPECT_THROW(snn::prune_network(*net, 1.0), InvalidArgument);
  EXPECT_THROW(snn::prune_network(*net, -0.1), InvalidArgument);
}

}  // namespace
}  // namespace spiketune
