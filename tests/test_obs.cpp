// Observability subsystem tests: metrics registry semantics (including
// concurrent writers and the disabled fast path), LogHistogram bucket math,
// profiler scope nesting / self-time, and trace-JSON well-formedness
// (parsed back with a small recursive-descent JSON validator).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

using namespace spiketune;

namespace {

/// Enables the given telemetry bits for the lifetime of the guard.
class TelemetryGuard {
 public:
  explicit TelemetryGuard(unsigned bits) : bits_(bits) {
    obs::enable_telemetry(bits_);
  }
  ~TelemetryGuard() { obs::disable_telemetry(bits_); }
  TelemetryGuard(const TelemetryGuard&) = delete;
  TelemetryGuard& operator=(const TelemetryGuard&) = delete;

 private:
  unsigned bits_;
};

const obs::MetricSnapshot* find_metric(
    const std::vector<obs::MetricSnapshot>& snaps, const std::string& name) {
  for (const auto& s : snaps)
    if (s.name == name) return &s;
  return nullptr;
}

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// true/false/null).  Returns false on the first violation — enough to
/// prove the trace exporter emits well-formed JSON, including the "+Inf"
/// string and fractional-microsecond timestamps.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(Telemetry, BitsComposeAndClear) {
  EXPECT_FALSE(obs::metrics_enabled());
  {
    TelemetryGuard g(obs::kMetricsBit | obs::kProfileBit);
    EXPECT_TRUE(obs::metrics_enabled());
    EXPECT_TRUE(obs::profile_enabled());
    EXPECT_FALSE(obs::trace_enabled());
  }
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::profile_enabled());
}

TEST(Metrics, CounterAccumulates) {
  const obs::MetricId id = obs::counter("test.counter.basic");
  TelemetryGuard g(obs::kMetricsBit);
  obs::add(id);
  obs::add(id, 41);
  const auto* snap = find_metric(obs::snapshot_metrics(), "test.counter.basic");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snap->count, 42);
}

TEST(Metrics, DisabledWritesAreDropped) {
  const obs::MetricId c = obs::counter("test.counter.disabled");
  const obs::MetricId h = obs::histogram("test.hist.disabled");
  ASSERT_FALSE(obs::metrics_enabled());
  obs::add(c, 1000);
  obs::observe(h, 3.0);
  TelemetryGuard g(obs::kMetricsBit);  // snapshot with metrics on
  const auto snaps = obs::snapshot_metrics();
  const auto* cs = find_metric(snaps, "test.counter.disabled");
  const auto* hs = find_metric(snaps, "test.hist.disabled");
  ASSERT_NE(cs, nullptr);
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(cs->count, 0);
  EXPECT_EQ(hs->hist.count(), 0);
}

TEST(Metrics, InternIsIdempotentAndKindChecked) {
  const obs::MetricId a = obs::counter("test.intern.once");
  const obs::MetricId b = obs::counter("test.intern.once");
  EXPECT_EQ(a, b);
  EXPECT_THROW(obs::gauge("test.intern.once"), InvalidArgument);
  EXPECT_THROW(obs::histogram("test.intern.once"), InvalidArgument);
}

TEST(Metrics, GaugeLastWriterWins) {
  const obs::MetricId id = obs::gauge("test.gauge.last");
  TelemetryGuard g(obs::kMetricsBit);
  obs::set(id, 1.5);
  obs::set(id, -7.25);
  const auto* snap = find_metric(obs::snapshot_metrics(), "test.gauge.last");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->kind, obs::MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(snap->value, -7.25);
}

TEST(Metrics, HistogramObservations) {
  const obs::MetricId id = obs::histogram("test.hist.basic");
  TelemetryGuard g(obs::kMetricsBit);
  for (double v : {1.0, 2.0, 4.0, 8.0, 100.0}) obs::observe(id, v);
  const auto* snap = find_metric(obs::snapshot_metrics(), "test.hist.basic");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->hist.count(), 5);
  EXPECT_DOUBLE_EQ(snap->hist.sum(), 115.0);
  EXPECT_DOUBLE_EQ(snap->hist.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(snap->hist.max_seen(), 100.0);
  EXPECT_GE(snap->hist.quantile(0.95), snap->hist.quantile(0.5));
}

TEST(Metrics, ConcurrentWritersSumExactly) {
  // Writer threads exit before the snapshot, so this also covers the
  // fold-into-retired-totals path (no count may be lost on thread exit).
  const obs::MetricId id = obs::counter("test.counter.concurrent");
  TelemetryGuard g(obs::kMetricsBit);
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([id] {
      for (int i = 0; i < kAdds; ++i) obs::add(id);
    });
  for (auto& t : threads) t.join();
  const auto* snap =
      find_metric(obs::snapshot_metrics(), "test.counter.concurrent");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(Metrics, CsvAndJsonlExports) {
  const obs::MetricId id = obs::counter("test.export.counter");
  TelemetryGuard g(obs::kMetricsBit);
  obs::add(id, 7);

  const std::string csv = ::testing::TempDir() + "/spiketune_metrics.csv";
  obs::write_metrics_csv(csv);
  const std::string csv_text = slurp(csv);
  EXPECT_NE(csv_text.find("name,kind,count"), std::string::npos);
  EXPECT_NE(csv_text.find("test.export.counter"), std::string::npos);
  std::remove(csv.c_str());

  const std::string jsonl = ::testing::TempDir() + "/spiketune_metrics.jsonl";
  obs::write_metrics_jsonl(jsonl);
  std::ifstream in(jsonl);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    JsonValidator v(line);
    EXPECT_TRUE(v.valid()) << "invalid JSONL line: " << line;
  }
  EXPECT_GT(lines, 0);
  std::remove(jsonl.c_str());
}

TEST(LogHistogram, BucketIndexEdges) {
  EXPECT_EQ(obs::LogHistogram::bucket_index(0.0), 0);
  EXPECT_EQ(obs::LogHistogram::bucket_index(1.0), 0);
  EXPECT_EQ(obs::LogHistogram::bucket_index(1.5), 1);
  EXPECT_EQ(obs::LogHistogram::bucket_index(2.0), 1);
  EXPECT_EQ(obs::LogHistogram::bucket_index(2.0001), 2);
  EXPECT_EQ(obs::LogHistogram::bucket_index(4.0), 2);
  EXPECT_EQ(obs::LogHistogram::bucket_index(1e300), 63);
}

TEST(LogHistogram, QuantilesClampedToObservedRange) {
  obs::LogHistogram h;
  h.record(3.0);
  h.record(3.0);
  h.record(3.0);
  // All mass in one bucket: every quantile must clamp to the observed
  // min == max == 3, not the bucket's geometric midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(LogHistogram, QuantileStaysInsideItsBucketUnderAdversarialFills) {
  // Regression: the representative value used to be clamped only to the
  // global [min, max], which outliers in distant buckets stretch far past
  // the edges of the bucket actually holding the q-th sample.  The clamp
  // must intersect the bucket's own [lower, upper].
  obs::LogHistogram h;
  h.record(0.5);                            // bucket 0
  for (int i = 0; i < 100; ++i) h.record(3.0);  // bucket 2: (2, 4]
  h.record(1e9);                            // a faraway outlier
  // The median sample sits in bucket (2, 4]; the reported quantile may not
  // escape those edges no matter what min/max are.
  const double med = h.quantile(0.5);
  EXPECT_GE(med, 2.0);
  EXPECT_LE(med, 4.0);
  // Extreme quantiles still respect the observed range: q=0 reports the
  // true minimum (bucket 0's representative is the min itself), q=1 a value
  // inside the outlier's bucket, never past max.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_GT(h.quantile(1.0), std::ldexp(1.0, 29));  // the 1e9 bucket's floor
  EXPECT_LE(h.quantile(1.0), 1e9);
}

TEST(LogHistogram, QuantilesMonotoneInQ) {
  // Bimodal mass with extreme outliers on both sides: quantiles must be
  // non-decreasing in q and inside [min_seen, max_seen] everywhere.
  obs::LogHistogram h;
  h.record(1e-3);
  for (int i = 0; i < 50; ++i) h.record(3.0);
  for (int i = 0; i < 30; ++i) h.record(900.0);
  h.record(1e12);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    EXPECT_GE(v, h.min_seen()) << "q=" << q;
    EXPECT_LE(v, h.max_seen()) << "q=" << q;
    prev = v;
  }
  // With 82 samples the median is in the 3.0 mass, p90 in the 900 mass.
  EXPECT_LE(h.quantile(0.5), 4.0);
  EXPECT_GT(h.quantile(0.9), 512.0);
}

TEST(LogHistogram, MergeAddsCountsAndExtremes) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  a.record(1.0);
  a.record(10.0);
  b.record(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 1011.0);
  EXPECT_DOUBLE_EQ(a.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(a.max_seen(), 1000.0);
}

TEST(LogHistogram, MeanOrFallback) {
  obs::LogHistogram h;
  EXPECT_DOUBLE_EQ(h.mean_or(-1.0), -1.0);
  h.record(2.0);
  h.record(4.0);
  EXPECT_DOUBLE_EQ(h.mean_or(-1.0), 3.0);
}

TEST(Profiler, NestingAndSelfTime) {
  obs::reset_profile();
  TelemetryGuard g(obs::kProfileBit);
  {
    ST_PROF_SCOPE("outer");
    for (int i = 0; i < 3; ++i) {
      ST_PROF_SCOPE("inner");
    }
  }
  const auto entries = obs::profile_entries();
  const obs::ProfileEntry* outer = nullptr;
  const obs::ProfileEntry* inner = nullptr;
  for (const auto& e : entries) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->calls, 1);
  EXPECT_EQ(inner->calls, 3);
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  EXPECT_FALSE(obs::profile_report().empty());
  obs::reset_profile();
}

TEST(Profiler, SameNameUnderDifferentParentsIsDistinct) {
  obs::reset_profile();
  TelemetryGuard g(obs::kProfileBit);
  {
    ST_PROF_SCOPE("parent_a");
    ST_PROF_SCOPE("leaf");
  }
  {
    ST_PROF_SCOPE("parent_b");
    ST_PROF_SCOPE("leaf");
  }
  int leaves = 0;
  for (const auto& e : obs::profile_entries())
    if (e.name == "leaf") ++leaves;
  EXPECT_EQ(leaves, 2);
  obs::reset_profile();
}

TEST(Profiler, DisabledScopesLeaveNoEntries) {
  obs::reset_profile();
  ASSERT_FALSE(obs::profile_enabled());
  {
    ST_PROF_SCOPE("should_not_appear");
  }
  for (const auto& e : obs::profile_entries())
    EXPECT_NE(e.name, "should_not_appear");
  EXPECT_TRUE(obs::profile_report().empty());
}

TEST(Profiler, ScopedTimerFeedsHistogramMetric) {
  const obs::MetricId id = obs::histogram("test.scope.duration_ns");
  TelemetryGuard g(obs::kMetricsBit);
  {
    obs::ScopedTimer t("hist_scope", id);
  }
  const auto* snap =
      find_metric(obs::snapshot_metrics(), "test.scope.duration_ns");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->hist.count(), 1);
}

TEST(Profiler, PhaseTimerAlwaysMeasures) {
  ASSERT_EQ(obs::telemetry_mask(), 0u);  // fully disabled
  obs::PhaseTimer t("phase_disabled");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double s = t.stop();
  EXPECT_GT(s, 0.0);
  EXPECT_DOUBLE_EQ(t.stop(), s);  // idempotent
}

TEST(Trace, JsonParsesBackWithThreadEvents) {
  obs::start_trace();
  {
    ST_PROF_SCOPE("trace_main");
  }
  obs::trace_counter("trace.value", 2.5);
  std::thread worker([] {
    obs::set_thread_label("test-worker");
    ST_PROF_SCOPE("trace_worker");
  });
  worker.join();
  obs::stop_trace();
  EXPECT_GE(obs::trace_event_count(), 3u);

  const std::string path = ::testing::TempDir() + "/spiketune_trace.json";
  obs::write_trace_json(path);
  const std::string text = slurp(path);
  std::remove(path.c_str());
  obs::reset_trace();

  JsonValidator v(text);
  EXPECT_TRUE(v.valid());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("trace_main"), std::string::npos);
  EXPECT_NE(text.find("trace_worker"), std::string::npos);
  EXPECT_NE(text.find("trace.value"), std::string::npos);
  EXPECT_NE(text.find("test-worker"), std::string::npos);  // 'M' metadata
}

TEST(Trace, FlowAndSpanEventsCarryIdAndBinding) {
  obs::start_trace();
  obs::trace_flow_at("serve.request", 42, 's', 1000);
  obs::trace_span("serve.recv", 1000, 250);
  obs::trace_flow_at("serve.request", 42, 'f', 2000);
  // An invalid phase is rejected (while tracing is on; off, it's a no-op).
  EXPECT_THROW(obs::trace_flow_at("bad", 1, 'x', 0), Error);
  obs::stop_trace();
  EXPECT_EQ(obs::trace_event_count(), 3u);

  const std::string path = ::testing::TempDir() + "/spiketune_flow.json";
  obs::write_trace_json(path);
  const std::string text = slurp(path);
  std::remove(path.c_str());
  obs::reset_trace();

  JsonValidator v(text);
  EXPECT_TRUE(v.valid());
  // Flow events bind by shared id; the finish carries "bp":"e" so viewers
  // attach it to the enclosing slice.
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(text.find("\"id\":42"), std::string::npos);
  EXPECT_NE(text.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(text.find("serve.recv"), std::string::npos);
}

TEST(Trace, DisabledEmitsNothing) {
  obs::reset_trace();
  ASSERT_FALSE(obs::trace_enabled());
  {
    ST_PROF_SCOPE("untraced");
  }
  obs::trace_counter("untraced.counter", 1.0);
  EXPECT_EQ(obs::trace_event_count(), 0u);
}
