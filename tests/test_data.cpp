// Tests for glyphs, SynthSvhn, dataset wrappers, and the data loader.
#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "data/dataloader.h"
#include "data/glyphs.h"
#include "data/synth_svhn.h"
#include "tensor/tensor_ops.h"

namespace spiketune::data {
namespace {

TEST(Glyphs, AllDigitsHaveInk) {
  for (int d = 0; d <= 9; ++d) {
    int ink = 0;
    for (auto v : glyph(d)) ink += v;
    EXPECT_GT(ink, 5) << "digit " << d;
    EXPECT_LT(ink, kGlyphWidth * kGlyphHeight) << "digit " << d;
  }
}

TEST(Glyphs, DigitsAreDistinct) {
  for (int a = 0; a <= 9; ++a)
    for (int b = a + 1; b <= 9; ++b) EXPECT_NE(glyph(a), glyph(b));
}

TEST(Glyphs, OutOfRangeThrows) {
  EXPECT_THROW(glyph(-1), InvalidArgument);
  EXPECT_THROW(glyph(10), InvalidArgument);
}

TEST(Glyphs, SampleInterpolatesAndClampsOutside) {
  // Center of an ink texel reads 1; far outside reads 0.
  EXPECT_FLOAT_EQ(glyph_sample(1, 2.5f, 3.5f), 1.0f);  // digit 1 center line
  EXPECT_FLOAT_EQ(glyph_sample(1, -5.0f, 0.0f), 0.0f);
  EXPECT_FLOAT_EQ(glyph_sample(1, 0.0f, 100.0f), 0.0f);
  // Between ink and empty -> fractional.
  const float v = glyph_sample(1, 3.0f, 3.5f);
  EXPECT_GT(v, 0.0f);
  EXPECT_LT(v, 1.0f);
}

TEST(SynthSvhn, ShapeAndRange) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 16;
  cfg.image_size = 16;
  SynthSvhn ds(cfg);
  EXPECT_EQ(ds.size(), 16);
  EXPECT_EQ(ds.num_classes(), 10);
  EXPECT_EQ(ds.image_shape(), Shape({3, 16, 16}));
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    const Example ex = ds.get(i);
    EXPECT_GE(ex.label, 0);
    EXPECT_LT(ex.label, 10);
    EXPECT_GE(ops::min(ex.image), 0.0f);
    EXPECT_LE(ops::max(ex.image), 1.0f);
  }
}

TEST(SynthSvhn, DeterministicPerIndex) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 8;
  cfg.image_size = 12;
  SynthSvhn a(cfg);
  SynthSvhn b(cfg);
  // Access in different orders; examples must match exactly.
  for (std::int64_t i = 7; i >= 0; --i) {
    const Example ea = a.get(i);
    const Example eb = b.get(7 - (7 - i));
    EXPECT_EQ(ea.label, eb.label);
    for (std::int64_t k = 0; k < ea.image.numel(); ++k)
      EXPECT_EQ(ea.image[k], eb.image[k]);
  }
}

TEST(SynthSvhn, SeedChangesContent) {
  SynthSvhnConfig a_cfg;
  a_cfg.num_examples = 4;
  a_cfg.image_size = 12;
  SynthSvhnConfig b_cfg = a_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  SynthSvhn a(a_cfg), b(b_cfg);
  int diffs = 0;
  for (std::int64_t i = 0; i < 4; ++i) {
    const Example ea = a.get(i), eb = b.get(i);
    for (std::int64_t k = 0; k < ea.image.numel(); ++k)
      if (ea.image[k] != eb.image[k]) {
        ++diffs;
        break;
      }
  }
  EXPECT_GT(diffs, 0);
}

TEST(SynthSvhn, LabelsRoughlyBalanced) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 1000;
  cfg.image_size = 12;
  SynthSvhn ds(cfg);
  std::array<int, 10> hist{};
  for (std::int64_t i = 0; i < ds.size(); ++i) ++hist[ds.get(i).label];
  for (int h : hist) EXPECT_GT(h, 50);  // each class well represented
}

TEST(SynthSvhn, DigitChangesPixels) {
  // Same seed, different labels should produce meaningfully different
  // pairwise image content across the dataset (digit is drawn per-index).
  SynthSvhnConfig cfg;
  cfg.num_examples = 32;
  cfg.image_size = 16;
  cfg.distractors = false;
  cfg.noise_stddev = 0.0f;
  SynthSvhn ds(cfg);
  const Example a = ds.get(0);
  const Example b = ds.get(1);
  float diff = 0.0f;
  for (std::int64_t k = 0; k < a.image.numel(); ++k)
    diff += std::abs(a.image[k] - b.image[k]);
  EXPECT_GT(diff, 1.0f);
}

TEST(SynthSvhnSplits, TrainTestDisjointStreams) {
  auto splits = make_synth_svhn_splits(16, 16, 12, 77);
  int identical = 0;
  for (std::int64_t i = 0; i < 16; ++i) {
    const Example tr = splits.train.get(i);
    const Example te = splits.test.get(i);
    bool same = true;
    for (std::int64_t k = 0; k < tr.image.numel(); ++k)
      if (tr.image[k] != te.image[k]) {
        same = false;
        break;
      }
    identical += same;
  }
  EXPECT_EQ(identical, 0);
}

TEST(InMemoryDataset, MaterializesAndValidates) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 8;
  cfg.image_size = 12;
  SynthSvhn src(cfg);
  InMemoryDataset mem = InMemoryDataset::from(src);
  EXPECT_EQ(mem.size(), 8);
  for (std::int64_t i = 0; i < 8; ++i)
    EXPECT_EQ(mem.get(i).label, src.get(i).label);
  EXPECT_THROW(mem.get(8), InvalidArgument);
}

TEST(NormalizedDataset, StandardizesChannels) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 8;
  cfg.image_size = 12;
  auto base = std::make_shared<InMemoryDataset>(
      InMemoryDataset::from(SynthSvhn(cfg)));
  NormalizedDataset norm(base, {0.5f, 0.5f, 0.5f}, {0.25f, 0.25f, 0.25f});
  const Example raw = base->get(0);
  const Example n = norm.get(0);
  EXPECT_NEAR(n.image[0], (raw.image[0] - 0.5f) / 0.25f, 1e-6f);
}

TEST(NormalizedDataset, RejectsBadArity) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 2;
  cfg.image_size = 12;
  auto base = std::make_shared<InMemoryDataset>(
      InMemoryDataset::from(SynthSvhn(cfg)));
  EXPECT_THROW(NormalizedDataset(base, {0.5f}, {0.25f}), InvalidArgument);
  EXPECT_THROW(NormalizedDataset(base, {0.5f, 0.5f, 0.5f}, {1, 1, 0}),
               InvalidArgument);
}

TEST(ChannelMeans, InUnitRange) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 32;
  cfg.image_size = 12;
  SynthSvhn ds(cfg);
  const auto means = channel_means(ds);
  ASSERT_EQ(means.size(), 3u);
  for (float m : means) {
    EXPECT_GT(m, 0.1f);
    EXPECT_LT(m, 0.9f);
  }
}

TEST(DataLoader, BatchesCoverDatasetOnce) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 10;
  cfg.image_size = 12;
  auto ds = std::make_shared<InMemoryDataset>(
      InMemoryDataset::from(SynthSvhn(cfg)));
  DataLoader loader(ds, 4, /*shuffle=*/false);
  EXPECT_EQ(loader.num_batches(), 3);
  Batch b;
  std::int64_t total = 0;
  int batches = 0;
  while (loader.next(b)) {
    total += b.batch_size();
    ++batches;
    EXPECT_EQ(b.images.shape()[0], b.batch_size());
  }
  EXPECT_EQ(total, 10);
  EXPECT_EQ(batches, 3);
}

TEST(DataLoader, DropLast) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 10;
  cfg.image_size = 12;
  auto ds = std::make_shared<InMemoryDataset>(
      InMemoryDataset::from(SynthSvhn(cfg)));
  DataLoader loader(ds, 4, false, 0, /*drop_last=*/true);
  EXPECT_EQ(loader.num_batches(), 2);
  Batch b;
  std::int64_t total = 0;
  while (loader.next(b)) {
    EXPECT_EQ(b.batch_size(), 4);
    total += b.batch_size();
  }
  EXPECT_EQ(total, 8);
}

TEST(DataLoader, ShuffleIsPermutationAndEpochDependent) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 32;
  cfg.image_size = 12;
  auto ds = std::make_shared<InMemoryDataset>(
      InMemoryDataset::from(SynthSvhn(cfg)));

  auto labels_of_epoch = [&](DataLoader& loader, std::int64_t epoch) {
    loader.start_epoch(epoch);
    std::vector<int> labels;
    Batch b;
    while (loader.next(b))
      labels.insert(labels.end(), b.labels.begin(), b.labels.end());
    return labels;
  };

  DataLoader loader(ds, 8, /*shuffle=*/true, 42);
  const auto e0 = labels_of_epoch(loader, 0);
  const auto e1 = labels_of_epoch(loader, 1);
  EXPECT_EQ(e0.size(), 32u);
  // Same multiset of labels...
  auto s0 = e0, s1 = e1;
  std::sort(s0.begin(), s0.end());
  std::sort(s1.begin(), s1.end());
  EXPECT_EQ(s0, s1);
  // ...but (with overwhelming probability) a different order.
  EXPECT_NE(e0, e1);
  // And the same epoch is reproducible.
  DataLoader loader2(ds, 8, true, 42);
  EXPECT_EQ(labels_of_epoch(loader2, 0), e0);
}

TEST(MakeBatch, PacksImagesContiguously) {
  SynthSvhnConfig cfg;
  cfg.num_examples = 4;
  cfg.image_size = 12;
  SynthSvhn ds(cfg);
  const Batch b = make_batch(ds, {2, 0});
  EXPECT_EQ(b.images.shape(), Shape({2, 3, 12, 12}));
  const Example e2 = ds.get(2);
  for (std::int64_t k = 0; k < e2.image.numel(); ++k)
    EXPECT_EQ(b.images[k], e2.image[k]);
  EXPECT_EQ(b.labels[0], ds.get(2).label);
  EXPECT_EQ(b.labels[1], ds.get(0).label);
}

}  // namespace
}  // namespace spiketune::data
