// Coverage for the remaining thin spots: logging levels, the explicit
// train_epoch(optimizer, schedule) entry point with SGD + StepLr, empty
// checkpoints, DSE with custom device lists, and report formatting edges.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/error.h"
#include "core/logging.h"
#include "core/serialize.h"
#include "data/dataloader.h"
#include "data/encoders.h"
#include "data/synth_digits.h"
#include "hw/dse.h"
#include "snn/linear.h"
#include "snn/model_zoo.h"
#include "train/trainer.h"

namespace spiketune {
namespace {

TEST(Logging, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped (no observable side effect to
  // assert beyond not crashing, but the gate value must round-trip).
  ST_LOG_INFO << "dropped";
  ST_LOG_ERROR << "kept";
  set_log_level(LogLevel::kOff);
  ST_LOG_ERROR << "also dropped";
  set_log_level(before);
}

namespace logging_probe {
/// Counts how many times it is actually streamed into an ostream, so the
/// test can prove below-threshold lines never construct/format anything.
struct StreamProbe {
  int* hits;
};
std::ostream& operator<<(std::ostream& os, const StreamProbe& p) {
  ++*p.hits;
  return os << "probe";
}
}  // namespace logging_probe

TEST(Logging, BelowThresholdShortCircuitsFormatting) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  int hits = 0;
  ST_LOG_DEBUG << logging_probe::StreamProbe{&hits};
  ST_LOG_INFO << logging_probe::StreamProbe{&hits};
  EXPECT_EQ(hits, 0);  // stream never built, operands never formatted
  set_log_level(before);
}

TEST(Logging, PrefixCarriesElapsedTimeAndThreadOrdinal) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStdout();
  ST_LOG_INFO << "payload-xyz";
  const std::string out = ::testing::internal::GetCapturedStdout();
  set_log_level(before);
  // "[   0.123s t00 INFO ] payload-xyz\n"
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("s t"), std::string::npos);
  EXPECT_NE(out.find("INFO ] payload-xyz\n"), std::string::npos);
  EXPECT_GE(thread_ordinal(), 0);
  EXPECT_GT(process_elapsed_ns(), 0u);
}

TEST(Serialize, EmptyCheckpointRoundTrips) {
  const std::string path = ::testing::TempDir() + "/empty_ckpt.bin";
  save_checkpoint(path, {});
  EXPECT_TRUE(load_checkpoint(path).empty());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/dir/x.bin"), Error);
}

TEST(Trainer, ExplicitOptimizerAndSchedule) {
  // Drive train_epoch directly with SGD + StepLr (fit() covers Adam +
  // cosine); the learning rate must follow the schedule.
  data::SynthDigitsConfig dcfg;
  dcfg.num_examples = 32;
  dcfg.image_size = 12;
  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(data::SynthDigits(dcfg)));
  data::DataLoader loader(ds, 16, true, 3);

  auto net = std::make_unique<snn::SpikingNetwork>();
  net->add<snn::Flatten>();
  Rng rng(11);
  net->add<snn::Linear>(snn::LinearConfig{144, 16}, rng);
  net->add<snn::Lif>(snn::LifConfig{});
  net->add<snn::Linear>(snn::LinearConfig{16, 10}, rng);
  net->add<snn::Lif>(snn::LifConfig{});

  data::DirectEncoder encoder;
  snn::RateCrossEntropyLoss loss(4.0);
  train::TrainerConfig tcfg;
  tcfg.num_steps = 4;
  tcfg.batch_size = 16;
  tcfg.verbose = false;
  train::Trainer trainer(*net, encoder, loss, tcfg);

  train::Sgd opt(net->params(), 0.1, 0.9);
  train::StepLr schedule(0.1, 2, 0.1);
  const auto e0 = trainer.train_epoch(loader, opt, schedule, 0);
  const auto e2 = trainer.train_epoch(loader, opt, schedule, 2);
  EXPECT_DOUBLE_EQ(e0.lr, 0.1);
  EXPECT_DOUBLE_EQ(e2.lr, 0.01);
  EXPECT_EQ(e0.epoch, 0);
  EXPECT_GE(e0.train_loss, 0.0);
}

TEST(Dse, CustomDeviceListRestrictsGrid) {
  std::vector<hw::LayerWorkload> ws(1);
  ws[0].name = "fc";
  ws[0].input_size = 256;
  ws[0].fanout = 64;
  ws[0].neurons = 64;
  ws[0].num_weights = 16384;
  ws[0].avg_input_spikes = 32.0;

  hw::DseConfig cfg;
  cfg.devices = {hw::kintex_ultrascale_plus_ku5p()};
  cfg.policies = {hw::AllocationPolicy::kBalanced};
  cfg.modes = {hw::ComputeMode::kEventDriven};
  cfg.timesteps = 8;
  const auto points = hw::explore(ws, cfg);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].device, "xcku5p");
  EXPECT_EQ(points[0].label(), "xcku5p/balanced-sparse/event-driven");
}

TEST(Dse, ParetoOfSinglePointIsItself) {
  hw::DsePoint p;
  p.device = "x";
  p.latency_s = 1.0;
  p.fps_per_watt = 10.0;
  const auto front = hw::pareto_front({p});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].device, "x");
}

TEST(Dse, ParetoDropsDominated) {
  hw::DsePoint good;
  good.latency_s = 1.0;
  good.fps_per_watt = 10.0;
  hw::DsePoint bad;
  bad.latency_s = 2.0;
  bad.fps_per_watt = 5.0;
  hw::DsePoint tradeoff;
  tradeoff.latency_s = 0.5;
  tradeoff.fps_per_watt = 8.0;
  const auto front = hw::pareto_front({good, bad, tradeoff});
  EXPECT_EQ(front.size(), 2u);  // bad is dominated by good
  EXPECT_DOUBLE_EQ(front[0].latency_s, 0.5);  // sorted by latency
}

TEST(ModelZoo, InitGainScalesWeights) {
  snn::MlpConfig a;
  a.init_gain = 1.0f;
  snn::MlpConfig b = a;
  b.init_gain = 2.0f;
  auto na = snn::make_snn_mlp(a);
  auto nb = snn::make_snn_mlp(b);
  auto pa = na->params();
  auto pb = nb->params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      EXPECT_FLOAT_EQ(pb[i]->value[k], 2.0f * pa[i]->value[k]);
}

}  // namespace
}  // namespace spiketune
