// Conv2d / Linear / Pool / Flatten layers: forward semantics and numeric
// gradient checks of every backward path.
#include <gtest/gtest.h>

#include <memory>

#include "core/error.h"
#include "core/rng.h"
#include "snn/conv2d.h"
#include "snn/linear.h"
#include "snn/pool.h"
#include "tensor/gradcheck.h"
#include "tensor/tensor_ops.h"

namespace spiketune::snn {
namespace {

// Scalar objective used in gradient checks: weighted sum of the output so
// every output element receives a distinct gradient.
Tensor probe_weights(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform(shape, rng, -1.0f, 1.0f);
}

double weighted_sum(const Tensor& out, const Tensor& probe) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i)
    acc += static_cast<double>(out[i]) * probe[i];
  return acc;
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(1);
  Linear fc(LinearConfig{2, 3}, rng);
  fc.weight().value = Tensor(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  fc.bias().value = Tensor(Shape{3}, {0.1f, 0.2f, 0.3f});
  fc.begin_window(1, false);
  Tensor out = fc.forward_step(Tensor(Shape{1, 2}, {1.0f, -1.0f}));
  EXPECT_NEAR(out[0], 1 - 2 + 0.1f, 1e-6f);
  EXPECT_NEAR(out[1], 3 - 4 + 0.2f, 1e-6f);
  EXPECT_NEAR(out[2], 5 - 6 + 0.3f, 1e-6f);
}

TEST(Linear, InputGradCheck) {
  Rng rng(2);
  Linear fc(LinearConfig{5, 4}, rng);
  Tensor x = Tensor::uniform(Shape{3, 5}, rng, -1.0f, 1.0f);
  const Tensor probe = probe_weights(Shape{3, 4}, 11);

  fc.begin_window(3, true);
  Tensor out = fc.forward_step(x);
  Tensor gin = fc.backward_step(probe);

  auto f = [&](const Tensor& xin) {
    Linear fc2(LinearConfig{5, 4}, rng);
    fc2.weight().value = fc.weight().value;
    fc2.bias().value = fc.bias().value;
    fc2.begin_window(3, false);
    return weighted_sum(fc2.forward_step(xin), probe);
  };
  const auto res = check_gradient(f, x, gin, 1e-2);
  EXPECT_TRUE(res.ok(2e-2, 1e-4)) << res.max_rel_error;
}

TEST(Linear, WeightGradCheck) {
  Rng rng(3);
  Linear fc(LinearConfig{4, 3}, rng);
  Tensor x = Tensor::uniform(Shape{2, 4}, rng, -1.0f, 1.0f);
  const Tensor probe = probe_weights(Shape{2, 3}, 13);

  fc.zero_grad();
  fc.begin_window(2, true);
  fc.forward_step(x);
  fc.backward_step(probe);

  const Tensor w0 = fc.weight().value;
  auto f = [&](const Tensor& w) {
    Linear fc2(LinearConfig{4, 3}, rng);
    fc2.weight().value = w;
    fc2.bias().value = fc.bias().value;
    fc2.begin_window(2, false);
    return weighted_sum(fc2.forward_step(x), probe);
  };
  const auto res = check_gradient(f, w0, fc.weight().grad, 1e-2);
  EXPECT_TRUE(res.ok(2e-2, 1e-4)) << res.max_rel_error;
}

TEST(Linear, BiasGradCheck) {
  Rng rng(4);
  Linear fc(LinearConfig{3, 2}, rng);
  Tensor x = Tensor::uniform(Shape{2, 3}, rng, -1.0f, 1.0f);
  const Tensor probe = probe_weights(Shape{2, 2}, 17);

  fc.zero_grad();
  fc.begin_window(2, true);
  fc.forward_step(x);
  fc.backward_step(probe);

  const Tensor b0 = fc.bias().value;
  auto f = [&](const Tensor& b) {
    Linear fc2(LinearConfig{3, 2}, rng);
    fc2.weight().value = fc.weight().value;
    fc2.bias().value = b;
    fc2.begin_window(2, false);
    return weighted_sum(fc2.forward_step(x), probe);
  };
  const auto res = check_gradient(f, b0, fc.bias().grad, 1e-2);
  EXPECT_TRUE(res.ok(2e-2, 1e-4)) << res.max_rel_error;
}

TEST(Linear, GradAccumulatesAcrossSteps) {
  Rng rng(5);
  Linear fc(LinearConfig{2, 2}, rng);
  Tensor x = Tensor::full(Shape{1, 2}, 1.0f);
  Tensor g = Tensor::full(Shape{1, 2}, 1.0f);
  fc.zero_grad();
  fc.begin_window(1, true);
  fc.forward_step(x);
  fc.forward_step(x);
  fc.backward_step(g);
  const float after_one = fc.weight().grad[0];
  fc.backward_step(g);
  EXPECT_NEAR(fc.weight().grad[0], 2.0f * after_one, 1e-6f);
}

TEST(Conv2d, ForwardMatchesManualKernel) {
  Rng rng(6);
  Conv2d conv(Conv2dConfig{1, 1, 3, 0, /*bias=*/false}, rng);
  // Identity-ish kernel: only center tap = 2.
  conv.weight().value.fill(0.0f);
  conv.weight().value[4] = 2.0f;
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  conv.begin_window(1, false);
  Tensor out = conv.forward_step(x);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 0}), 2.0f * x.at({0, 0, 1, 1}));
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 2.0f * x.at({0, 0, 2, 2}));
}

TEST(Conv2d, InputGradCheck) {
  Rng rng(7);
  Conv2d conv(Conv2dConfig{2, 3, 3}, rng);
  Tensor x = Tensor::uniform(Shape{2, 2, 5, 5}, rng, -1.0f, 1.0f);
  const Tensor probe = probe_weights(Shape{2, 3, 3, 3}, 23);

  conv.begin_window(2, true);
  conv.forward_step(x);
  Tensor gin = conv.backward_step(probe);

  auto f = [&](const Tensor& xin) {
    Conv2d c2(Conv2dConfig{2, 3, 3}, rng);
    c2.weight().value = conv.weight().value;
    c2.bias().value = conv.bias().value;
    c2.begin_window(2, false);
    return weighted_sum(c2.forward_step(xin), probe);
  };
  const auto res = check_gradient(f, x, gin, 1e-2);
  EXPECT_TRUE(res.ok(2e-2, 1e-4)) << res.max_rel_error;
}

TEST(Conv2d, WeightGradCheck) {
  Rng rng(8);
  Conv2d conv(Conv2dConfig{2, 2, 3}, rng);
  Tensor x = Tensor::uniform(Shape{1, 2, 5, 5}, rng, -1.0f, 1.0f);
  const Tensor probe = probe_weights(Shape{1, 2, 3, 3}, 29);

  conv.zero_grad();
  conv.begin_window(1, true);
  conv.forward_step(x);
  conv.backward_step(probe);

  const Tensor w0 = conv.weight().value;
  auto f = [&](const Tensor& w) {
    Conv2d c2(Conv2dConfig{2, 2, 3}, rng);
    c2.weight().value = w;
    c2.bias().value = conv.bias().value;
    c2.begin_window(1, false);
    return weighted_sum(c2.forward_step(x), probe);
  };
  const auto res = check_gradient(f, w0, conv.weight().grad, 1e-2);
  EXPECT_TRUE(res.ok(2e-2, 1e-4)) << res.max_rel_error;
}

TEST(Conv2d, BiasGradIsSpatialSumOfProbe) {
  Rng rng(9);
  Conv2d conv(Conv2dConfig{1, 2, 3}, rng);
  Tensor x = Tensor::uniform(Shape{1, 1, 4, 4}, rng, -1.0f, 1.0f);
  Tensor probe(Shape{1, 2, 2, 2});
  probe.fill(1.0f);
  conv.zero_grad();
  conv.begin_window(1, true);
  conv.forward_step(x);
  conv.backward_step(probe);
  EXPECT_NEAR(conv.bias().grad[0], 4.0f, 1e-5f);
  EXPECT_NEAR(conv.bias().grad[1], 4.0f, 1e-5f);
}

TEST(Conv2d, PaddingGeometry) {
  Rng rng(10);
  Conv2d conv(Conv2dConfig{1, 1, 3, /*pad=*/1}, rng);
  EXPECT_EQ(conv.output_shape(Shape{1, 8, 8}), Shape({1, 8, 8}));
  Tensor x(Shape{1, 1, 8, 8});
  conv.begin_window(1, false);
  EXPECT_EQ(conv.forward_step(x).shape(), Shape({1, 1, 8, 8}));
}

TEST(Conv2d, FanoutPerSpike) {
  Rng rng(11);
  Conv2d conv(Conv2dConfig{3, 32, 3}, rng);
  EXPECT_EQ(conv.fanout_per_spike(), 32 * 9);
}

TEST(Conv2d, ChannelMismatchThrows) {
  Rng rng(12);
  Conv2d conv(Conv2dConfig{3, 4, 3}, rng);
  conv.begin_window(1, false);
  EXPECT_THROW(conv.forward_step(Tensor(Shape{1, 2, 8, 8})),
               InvalidArgument);
}

TEST(MaxPool, ForwardSelectsMaxima) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 9, 1});
  pool.begin_window(1, false);
  Tensor out = pool.forward_step(x);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 2}));
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[1], 9.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, {1, 7, 3, 2});
  pool.begin_window(1, true);
  pool.forward_step(x);
  Tensor g(Shape{1, 1, 1, 1}, {5.0f});
  Tensor gin = pool.backward_step(g);
  EXPECT_EQ(gin[0], 0.0f);
  EXPECT_EQ(gin[1], 5.0f);
  EXPECT_EQ(gin[2], 0.0f);
  EXPECT_EQ(gin[3], 0.0f);
}

TEST(MaxPool, TruncatesRaggedBorder) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 5, 5});
  pool.begin_window(1, false);
  EXPECT_EQ(pool.forward_step(x).shape(), Shape({1, 1, 2, 2}));
}

TEST(MaxPool, GradCheckOnDistinctValues) {
  // Finite differences are valid when no two window entries tie.
  Rng rng(13);
  MaxPool2d pool(2);
  Tensor x(Shape{1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(i) * 0.37f;
  const Tensor probe = probe_weights(Shape{1, 2, 2, 2}, 31);
  pool.begin_window(1, true);
  pool.forward_step(x);
  Tensor gin = pool.backward_step(probe);
  auto f = [&](const Tensor& xin) {
    MaxPool2d p2(2);
    p2.begin_window(1, false);
    return weighted_sum(p2.forward_step(xin), probe);
  };
  const auto res = check_gradient(f, x, gin, 1e-3);
  EXPECT_TRUE(res.ok(1e-2, 1e-4)) << res.max_rel_error;
}

TEST(AvgPool, ForwardAverages) {
  AvgPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, {1, 3, 5, 7});
  pool.begin_window(1, false);
  Tensor out = pool.forward_step(x);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(AvgPool, GradCheck) {
  Rng rng(14);
  AvgPool2d pool(2);
  Tensor x = Tensor::uniform(Shape{2, 2, 4, 4}, rng, -1.0f, 1.0f);
  const Tensor probe = probe_weights(Shape{2, 2, 2, 2}, 37);
  pool.begin_window(2, true);
  pool.forward_step(x);
  Tensor gin = pool.backward_step(probe);
  auto f = [&](const Tensor& xin) {
    AvgPool2d p2(2);
    p2.begin_window(2, false);
    return weighted_sum(p2.forward_step(xin), probe);
  };
  const auto res = check_gradient(f, x, gin, 1e-3);
  EXPECT_TRUE(res.ok(1e-2, 1e-4)) << res.max_rel_error;
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  flat.begin_window(2, true);
  Tensor x(Shape{2, 3, 4, 5});
  Tensor out = flat.forward_step(x);
  EXPECT_EQ(out.shape(), Shape({2, 60}));
  Tensor g(Shape{2, 60});
  Tensor gin = flat.backward_step(g);
  EXPECT_EQ(gin.shape(), x.shape());
}

TEST(Flatten, OutputShapePerSample) {
  Flatten flat;
  EXPECT_EQ(flat.output_shape(Shape{3, 4, 5}), Shape({60}));
}

TEST(Layers, ParamListArity) {
  Rng rng(15);
  Conv2d conv(Conv2dConfig{1, 1, 3}, rng);
  EXPECT_EQ(conv.params().size(), 2u);
  Conv2d conv_nb(Conv2dConfig{1, 1, 3, 0, /*bias=*/false}, rng);
  EXPECT_EQ(conv_nb.params().size(), 1u);
  Linear fc(LinearConfig{2, 2}, rng);
  EXPECT_EQ(fc.params().size(), 2u);
  MaxPool2d pool(2);
  EXPECT_TRUE(pool.params().empty());
}

}  // namespace
}  // namespace spiketune::snn
