// Optimizers, LR schedules, and the training loop on a learnable toy task.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/error.h"
#include "data/dataloader.h"
#include "data/encoders.h"
#include "snn/linear.h"
#include "snn/model_zoo.h"
#include "train/lr_scheduler.h"
#include "train/trainer.h"

namespace spiketune::train {
namespace {

using snn::Param;

TEST(Sgd, SingleStepMatchesHandComputation) {
  Param p("w", Tensor(Shape{2}, {1.0f, -1.0f}));
  p.grad = Tensor(Shape{2}, {0.5f, 2.0f});
  Sgd opt({&p}, 0.1);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6f);
  EXPECT_NEAR(p.value[1], -1.0f - 0.1f * 2.0f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p("w", Tensor(Shape{1}, {0.0f}));
  Sgd opt({&p}, 1.0, /*momentum=*/0.5);
  p.grad = Tensor(Shape{1}, {1.0f});
  opt.step();  // v = 1, w = -1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
  opt.step();  // v = 1.5, w = -2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinks) {
  Param p("w", Tensor(Shape{1}, {2.0f}));
  p.grad = Tensor(Shape{1}, {0.0f});
  Sgd opt({&p}, 0.1, 0.0, /*weight_decay=*/0.5);
  opt.step();
  EXPECT_NEAR(p.value[0], 2.0f - 0.1f * (0.5f * 2.0f), 1e-6f);
}

TEST(Adam, FirstStepIsLrSizedSignStep) {
  // With bias correction, the very first Adam update is ~ lr * sign(grad).
  Param p("w", Tensor(Shape{2}, {0.0f, 0.0f}));
  p.grad = Tensor(Shape{2}, {0.3f, -7.0f});
  Adam opt({&p}, 0.01);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
  EXPECT_NEAR(p.value[1], 0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w - 3)^2 by feeding grad = 2(w - 3).
  Param p("w", Tensor(Shape{1}, {0.0f}));
  Adam opt({&p}, 0.05);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Optimizer, ZeroGradClears) {
  Param p("w", Tensor(Shape{2}, {1, 2}));
  p.grad = Tensor(Shape{2}, {5, 5});
  Sgd opt({&p}, 0.1);
  opt.zero_grad();
  EXPECT_EQ(p.grad[0], 0.0f);
}

TEST(Optimizer, Validation) {
  Param p("w", Tensor(Shape{1}));
  EXPECT_THROW(Sgd({}, 0.1), InvalidArgument);
  EXPECT_THROW(Sgd({&p}, 0.0), InvalidArgument);
  EXPECT_THROW(Sgd({&p}, 0.1, 1.0), InvalidArgument);
  EXPECT_THROW(Adam({&p}, 0.1, 1.0), InvalidArgument);
}

TEST(CosineAnnealing, EndpointsAndMidpoint) {
  CosineAnnealingLr sched(1.0, 10, 0.0);
  EXPECT_NEAR(sched.lr_at(0), 1.0, 1e-9);
  EXPECT_NEAR(sched.lr_at(5), 0.5, 1e-9);
  EXPECT_NEAR(sched.lr_at(10), 0.0, 1e-9);
  EXPECT_NEAR(sched.lr_at(15), 0.0, 1e-9);  // holds after window
}

TEST(CosineAnnealing, RespectsEtaMin) {
  CosineAnnealingLr sched(1.0, 10, 0.1);
  EXPECT_NEAR(sched.lr_at(10), 0.1, 1e-9);
  EXPECT_NEAR(sched.lr_at(0), 1.0, 1e-9);
}

TEST(CosineAnnealing, MonotoneDecreasingWithinWindow) {
  CosineAnnealingLr sched(0.01, 25);
  for (int e = 1; e <= 25; ++e)
    EXPECT_LT(sched.lr_at(e), sched.lr_at(e - 1)) << "epoch " << e;
}

TEST(CosineAnnealing, WarmRestartsRestart) {
  CosineAnnealingLr sched(1.0, 5, 0.0, /*warm_restarts=*/true);
  EXPECT_NEAR(sched.lr_at(5), 1.0, 1e-9);
  EXPECT_NEAR(sched.lr_at(7), sched.lr_at(2), 1e-9);
}

TEST(StepLr, DecaysEveryStepSize) {
  StepLr sched(1.0, 3, 0.1);
  EXPECT_NEAR(sched.lr_at(0), 1.0, 1e-12);
  EXPECT_NEAR(sched.lr_at(2), 1.0, 1e-12);
  EXPECT_NEAR(sched.lr_at(3), 0.1, 1e-12);
  EXPECT_NEAR(sched.lr_at(6), 0.01, 1e-12);
}

TEST(ConstantLr, Constant) {
  ConstantLr sched(0.42);
  EXPECT_EQ(sched.lr_at(0), 0.42);
  EXPECT_EQ(sched.lr_at(100), 0.42);
}

TEST(RunningMean, WeightedMean) {
  RunningMean m;
  m.add(1.0, 1);
  m.add(3.0, 3);
  EXPECT_NEAR(m.mean(), 2.5, 1e-12);
  m.reset();
  EXPECT_THROW(m.mean(), InvalidArgument);
}

TEST(RunningMean, MeanOrDoesNotThrowWhenEmpty) {
  RunningMean m;
  EXPECT_DOUBLE_EQ(m.mean_or(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_or(-3.5), -3.5);
  m.add(4.0, 2);
  EXPECT_DOUBLE_EQ(m.mean_or(0.0), 4.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.mean_or(7.0), 7.0);
}

TEST(RunningMean, WeightedMeanEdgeCases) {
  RunningMean m;
  EXPECT_THROW(m.add(1.0, 0), InvalidArgument);
  EXPECT_THROW(m.add(1.0, -2), InvalidArgument);
  // A single huge weight dominates the mean exactly.
  m.add(2.0, 1'000'000'000);
  m.add(100.0, 1);
  EXPECT_NEAR(m.mean(), 2.0, 1e-6);
  EXPECT_EQ(m.count(), 1'000'000'001);
  // Zero-valued samples still count toward the denominator.
  RunningMean z;
  z.add(0.0, 5);
  z.add(10.0, 5);
  EXPECT_NEAR(z.mean(), 5.0, 1e-12);
}

TEST(LatencySummary, RecordsAndSummarizes) {
  LatencySummary lat;
  EXPECT_EQ(lat.count(), 0);
  EXPECT_DOUBLE_EQ(lat.mean_seconds(), 0.0);  // mean_or fallback when empty
  lat.record_seconds(0.010);
  lat.record_seconds(0.010);
  lat.record_seconds(0.010);
  EXPECT_EQ(lat.count(), 3);
  // All identical samples: quantiles clamp to the observed value.
  EXPECT_NEAR(lat.p50_seconds(), 0.010, 1e-9);
  EXPECT_NEAR(lat.p95_seconds(), 0.010, 1e-9);
  EXPECT_NEAR(lat.max_seconds(), 0.010, 1e-9);
  EXPECT_NEAR(lat.mean_seconds(), 0.010, 1e-9);
  EXPECT_THROW(lat.record_seconds(-1.0), InvalidArgument);
  lat.reset();
  EXPECT_EQ(lat.count(), 0);
}

// Trivially separable spiking task: class 0 lights the left half of the
// input, class 1 the right half.  A one-hidden-layer SNN must learn it.
class ToyDataset final : public data::Dataset {
 public:
  explicit ToyDataset(std::int64_t n) : n_(n) {}
  std::int64_t size() const override { return n_; }
  int num_classes() const override { return 2; }
  Shape image_shape() const override { return Shape{1, 4, 4}; }
  data::Example get(std::int64_t i) const override {
    data::Example ex;
    ex.label = static_cast<int>(i % 2);
    ex.image = Tensor(Shape{1, 4, 4});
    Rng rng = Rng(999).fork(static_cast<std::uint64_t>(i));
    for (std::int64_t y = 0; y < 4; ++y)
      for (std::int64_t x = 0; x < 4; ++x) {
        const bool hot = (ex.label == 0) ? (x < 2) : (x >= 2);
        ex.image.at({0, y, x}) =
            hot ? static_cast<float>(rng.uniform(0.7, 1.0))
                : static_cast<float>(rng.uniform(0.0, 0.15));
      }
    return ex;
  }

 private:
  std::int64_t n_;
};

TEST(Trainer, LearnsSeparableTask) {
  snn::MlpConfig mcfg;
  mcfg.lif.beta = 0.5f;
  mcfg.lif.threshold = 1.0f;

  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(ToyDataset(64)));
  data::DataLoader loader(ds, 16, true, 7);
  data::RateEncoder encoder(42);
  snn::RateCrossEntropyLoss loss(8.0);

  TrainerConfig tcfg;
  tcfg.epochs = 15;
  tcfg.num_steps = 8;
  tcfg.batch_size = 16;
  tcfg.base_lr = 5e-3;
  tcfg.verbose = false;

  // Flatten images inside the window by reshaping batch tensors: build a
  // wrapper network with a Flatten front.
  auto wrapped = std::make_unique<snn::SpikingNetwork>();
  wrapped->add<snn::Flatten>();
  Rng wrng(mcfg.weight_seed);
  wrapped->add<snn::Linear>(snn::LinearConfig{16, 24}, wrng);
  wrapped->add<snn::Lif>(mcfg.lif);
  wrapped->add<snn::Linear>(snn::LinearConfig{24, 2}, wrng);
  wrapped->add<snn::Lif>(mcfg.lif);

  Trainer trainer(*wrapped, encoder, loss, tcfg);
  trainer.fit(loader);

  data::DataLoader eval_loader(ds, 16, false);
  const EvalMetrics m = trainer.evaluate(eval_loader);
  EXPECT_GT(m.accuracy, 0.9) << "toy task should be learnable";
  EXPECT_GT(m.firing_rate, 0.0);
  EXPECT_LT(m.firing_rate, 1.0);
}

TEST(Trainer, LossDecreasesOverEpochs) {
  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(ToyDataset(32)));
  data::DataLoader loader(ds, 16, true, 3);
  data::RateEncoder encoder(5);
  snn::RateCrossEntropyLoss loss(8.0);

  snn::LifConfig lif;
  lif.beta = 0.5f;
  lif.threshold = 0.5f;
  lif.surrogate = snn::Surrogate::fast_sigmoid(2.0f);
  auto net = std::make_unique<snn::SpikingNetwork>();
  net->add<snn::Flatten>();
  Rng rng(123);
  net->add<snn::Linear>(snn::LinearConfig{16, 16}, rng);
  net->add<snn::Lif>(lif);
  net->add<snn::Linear>(snn::LinearConfig{16, 2}, rng);
  net->add<snn::Lif>(lif);

  TrainerConfig tcfg;
  tcfg.epochs = 10;
  tcfg.num_steps = 8;
  tcfg.batch_size = 16;
  tcfg.base_lr = 5e-3;
  tcfg.verbose = false;
  Trainer trainer(*net, encoder, loss, tcfg);

  std::vector<double> losses;
  trainer.fit(loader, [&](const EpochMetrics& m) {
    losses.push_back(m.train_loss);
  });
  ASSERT_EQ(losses.size(), 10u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Trainer, EvaluateRecordsActivity) {
  auto ds = std::make_shared<data::InMemoryDataset>(
      data::InMemoryDataset::from(ToyDataset(16)));
  data::DataLoader loader(ds, 8, false);
  data::RateEncoder encoder(5);
  snn::RateCrossEntropyLoss loss(4.0);

  auto net = std::make_unique<snn::SpikingNetwork>();
  net->add<snn::Flatten>();
  Rng rng(9);
  net->add<snn::Linear>(snn::LinearConfig{16, 8}, rng);
  net->add<snn::Lif>(snn::LifConfig{});

  TrainerConfig tcfg;
  tcfg.num_steps = 4;
  tcfg.batch_size = 8;
  tcfg.verbose = false;
  Trainer trainer(*net, encoder, loss, tcfg);
  const EvalMetrics m = trainer.evaluate(loader);
  EXPECT_EQ(m.num_examples, 16);
  EXPECT_EQ(m.record.total_samples(), 16);
  EXPECT_EQ(m.record.layers().size(), 3u);
  // Linear input elements: 16 samples x 4 steps x 16 features.
  EXPECT_EQ(m.record.layers()[1].input_elements, 16 * 4 * 16);
}

}  // namespace
}  // namespace spiketune::train
