// Experiment harness tests: profiles, sweep grids, selection helpers, and
// report rendering (smoke-scale end-to-end runs live in test_integration).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/error.h"
#include "exp/report.h"
#include "exp/sweep.h"

namespace spiketune::exp {
namespace {

TEST(Profile, Names) {
  EXPECT_EQ(profile_by_name("fast"), Profile::kFast);
  EXPECT_EQ(profile_by_name("paper"), Profile::kPaper);
  EXPECT_EQ(profile_by_name("smoke"), Profile::kSmoke);
  EXPECT_THROW(profile_by_name("huge"), InvalidArgument);
  EXPECT_STREQ(profile_name(Profile::kFast), "fast");
}

TEST(Profile, PresetsScaleSensibly) {
  const auto smoke = ExperimentConfig::for_profile(Profile::kSmoke);
  const auto fast = ExperimentConfig::for_profile(Profile::kFast);
  const auto paper = ExperimentConfig::for_profile(Profile::kPaper);
  EXPECT_LT(smoke.train_size, fast.train_size);
  EXPECT_LT(fast.train_size, paper.train_size);
  EXPECT_EQ(paper.image_size, 32);       // paper trains on 32x32 SVHN crops
  EXPECT_EQ(paper.trainer.epochs, 25);   // cosine annealing over 25 epochs
  EXPECT_EQ(smoke.model.image_size, smoke.image_size);
}

TEST(Grids, Fig1ScalesMatchPaperRange) {
  const auto scales = fig1_scales();
  EXPECT_EQ(scales.front(), 0.5);  // paper sweeps 0.5 .. 32
  EXPECT_EQ(scales.back(), 32.0);
  for (std::size_t i = 1; i < scales.size(); ++i)
    EXPECT_DOUBLE_EQ(scales[i], scales[i - 1] * 2.0);  // log2 grid
}

TEST(Grids, Fig2CoversPaperOperatingPoints) {
  const auto betas = fig2_betas();
  const auto thetas = fig2_thetas();
  auto has = [](const std::vector<double>& v, double x) {
    for (double e : v)
      if (e == x) return true;
    return false;
  };
  EXPECT_TRUE(has(betas, 0.25));  // default
  EXPECT_TRUE(has(betas, 0.5));   // latency knee
  EXPECT_TRUE(has(betas, 0.7));   // prior-work comparison point
  EXPECT_TRUE(has(thetas, 1.0));  // default
  EXPECT_TRUE(has(thetas, 1.5));  // knee / comparison
}

std::vector<BetaThetaPoint> fake_grid() {
  // Synthetic grid with a known best-accuracy point and a known knee.
  auto mk = [](double beta, double theta, double acc, double lat) {
    BetaThetaPoint p;
    p.beta = beta;
    p.theta = theta;
    p.result.accuracy = acc;
    p.result.latency_us = lat;
    return p;
  };
  return {
      mk(0.25, 1.0, 0.90, 100.0),  // best accuracy, slow
      mk(0.50, 1.5, 0.88, 52.0),   // knee: within 3.5%, much faster
      mk(0.90, 2.5, 0.70, 30.0),   // fastest but accuracy collapsed
      mk(0.40, 1.0, 0.895, 95.0),
  };
}

TEST(Selection, BestAccuracyIndex) {
  const auto grid = fake_grid();
  EXPECT_EQ(best_accuracy_index(grid), 0u);
}

TEST(Selection, LatencyKneeRespectsAccuracyBudget) {
  const auto grid = fake_grid();
  EXPECT_EQ(latency_knee_index(grid, 0.035), 1u);
  // Tight budget excludes the knee; falls back to a compliant point.
  EXPECT_EQ(latency_knee_index(grid, 0.006), 3u);
  // Huge budget allows the collapsed point.
  EXPECT_EQ(latency_knee_index(grid, 0.5), 2u);
}

TEST(Report, Fig2RendersTablesAndKnee) {
  const std::string s = render_fig2(fake_grid());
  EXPECT_NE(s.find("Figure 2a"), std::string::npos);
  EXPECT_NE(s.find("Figure 2b"), std::string::npos);
  EXPECT_NE(s.find("latency knee"), std::string::npos);
  EXPECT_NE(s.find("beta=0.50"), std::string::npos);
}

TEST(Report, Fig1RendersSeries) {
  std::vector<SurrogateSweepPoint> pts;
  for (const char* s : {"arctan", "fast_sigmoid"}) {
    for (double scale : {0.5, 1.0}) {
      SurrogateSweepPoint p;
      p.surrogate = s;
      p.scale = scale;
      p.result.accuracy = 0.8 + 0.01 * scale;
      p.result.firing_rate = 0.2;
      p.result.fps_per_watt = 100.0 + scale;
      pts.push_back(p);
    }
  }
  const std::string out = render_fig1(pts);
  EXPECT_NE(out.find("arctan acc"), std::string::npos);
  EXPECT_NE(out.find("fast_sigmoid FPS/W"), std::string::npos);
  EXPECT_NE(out.find("green line"), std::string::npos);
  EXPECT_NE(out.find("efficiency fast_sigmoid vs arctan"), std::string::npos);
}

TEST(Report, CsvWritersProduceFiles) {
  std::vector<SurrogateSweepPoint> pts(1);
  pts[0].surrogate = "arctan";
  pts[0].scale = 2.0;
  const std::string p1 = ::testing::TempDir() + "/fig1.csv";
  write_fig1_csv(pts, p1);
  std::ifstream f1(p1);
  EXPECT_TRUE(f1.good());
  std::string header;
  std::getline(f1, header);
  EXPECT_NE(header.find("fps_per_watt"), std::string::npos);
  std::remove(p1.c_str());

  std::vector<BetaThetaPoint> bts(1);
  bts[0].beta = 0.5;
  bts[0].theta = 1.5;
  const std::string p2 = ::testing::TempDir() + "/fig2.csv";
  write_fig2_csv(bts, p2);
  std::ifstream f2(p2);
  EXPECT_TRUE(f2.good());
  std::remove(p2.c_str());
}

TEST(Report, EmptySweepThrows) {
  EXPECT_THROW(render_fig1({}), InvalidArgument);
  EXPECT_THROW(render_fig2({}), InvalidArgument);
  EXPECT_THROW(best_accuracy_index({}), InvalidArgument);
}

}  // namespace
}  // namespace spiketune::exp
