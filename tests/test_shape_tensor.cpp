// Unit tests for Shape and Tensor.
#include <gtest/gtest.h>

#include "core/error.h"
#include "tensor/tensor.h"

namespace spiketune {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, ScalarRankZero) {
  Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Strides) {
  Shape s{2, 3, 4};
  const auto st = s.strides();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, OffsetRowMajor) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.offset({0, 0, 0}), 0);
  EXPECT_EQ(s.offset({0, 0, 3}), 3);
  EXPECT_EQ(s.offset({0, 1, 0}), 4);
  EXPECT_EQ(s.offset({1, 2, 3}), 23);
}

TEST(Shape, NegativeDimRejected) {
  EXPECT_THROW(Shape({2, -1}), InvalidArgument);
}

TEST(Shape, EqualityByDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Shape, AxisOutOfRangeThrows) {
  Shape s{2};
  EXPECT_THROW(s.dim(1), InvalidArgument);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFills) {
  Tensor t = Tensor::full(Shape{5}, 2.5f);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, FlatAtBoundsChecked) {
  Tensor t(Shape{4});
  EXPECT_THROW(t.at(4), InvalidArgument);
  EXPECT_THROW(t.at(-1), InvalidArgument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
  EXPECT_THROW(t.reshaped(Shape{4}), InvalidArgument);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, UniformRespectsBounds) {
  Rng rng(1);
  Tensor t = Tensor::uniform(Shape{1000}, rng, -2.0f, 3.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(Tensor, NormalMoments) {
  Rng rng(2);
  Tensor t = Tensor::normal(Shape{20000}, rng, 1.0f, 2.0f);
  double sum = 0.0;
  double sq = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / static_cast<double>(t.numel());
  const double var = sq / static_cast<double>(t.numel()) - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Tensor, KaimingBound) {
  Rng rng(3);
  Tensor t = Tensor::kaiming_uniform(Shape{100, 25}, rng, 25);
  const float bound = 1.0f / 5.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -bound);
    EXPECT_LE(t[i], bound);
  }
}

TEST(Tensor, DeterministicInit) {
  Rng a(42);
  Rng b(42);
  Tensor ta = Tensor::uniform(Shape{64}, a, 0.0f, 1.0f);
  Tensor tb = Tensor::uniform(Shape{64}, b, 0.0f, 1.0f);
  for (std::int64_t i = 0; i < 64; ++i) EXPECT_EQ(ta[i], tb[i]);
}

}  // namespace
}  // namespace spiketune
