// Property-style parameterized suites (TEST_P) over the paper's
// hyperparameter space: LIF monotonicity laws, allocator invariants across
// densities and devices, and perf-model scaling laws.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "hw/perf_model.h"
#include "snn/lif.h"
#include "tensor/tensor_ops.h"

namespace spiketune {
namespace {

// ---- LIF firing-rate laws over a (beta, theta) grid -------------------------

class LifGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

std::int64_t spikes_under_drive(float beta, float theta, float drive,
                                int steps) {
  snn::LifConfig cfg;
  cfg.beta = beta;
  cfg.threshold = theta;
  snn::Lif lif(cfg);
  lif.begin_window(1, false);
  Tensor x(Shape{1, 1}, {drive});
  std::int64_t count = 0;
  for (int t = 0; t < steps; ++t)
    count += static_cast<std::int64_t>(lif.forward_step(x)[0]);
  return count;
}

TEST_P(LifGrid, RaisingThresholdNeverIncreasesFiring) {
  const auto [beta, theta] = GetParam();
  const auto low = spikes_under_drive(static_cast<float>(beta),
                                      static_cast<float>(theta), 0.6f, 200);
  const auto high = spikes_under_drive(
      static_cast<float>(beta), static_cast<float>(theta) + 0.5f, 0.6f, 200);
  EXPECT_GE(low, high) << "beta=" << beta << " theta=" << theta;
}

TEST_P(LifGrid, RaisingBetaNeverDecreasesFiring) {
  const auto [beta, theta] = GetParam();
  if (beta > 0.85) GTEST_SKIP() << "no headroom above beta";
  const auto low = spikes_under_drive(static_cast<float>(beta),
                                      static_cast<float>(theta), 0.6f, 200);
  const auto high = spikes_under_drive(static_cast<float>(beta) + 0.1f,
                                       static_cast<float>(theta), 0.6f, 200);
  EXPECT_GE(high, low) << "beta=" << beta << " theta=" << theta;
}

TEST_P(LifGrid, StrongerDriveNeverDecreasesFiring) {
  const auto [beta, theta] = GetParam();
  const auto weak = spikes_under_drive(static_cast<float>(beta),
                                       static_cast<float>(theta), 0.4f, 200);
  const auto strong = spikes_under_drive(
      static_cast<float>(beta), static_cast<float>(theta), 0.9f, 200);
  EXPECT_GE(strong, weak) << "beta=" << beta << " theta=" << theta;
}

TEST_P(LifGrid, NoLeakConservesChargeRate) {
  // beta = 1: long-run firing rate == drive / theta (reset-by-subtraction
  // conserves charge), independent of the grid's beta parameter.
  const auto [beta, theta] = GetParam();
  (void)beta;
  const float drive = 0.37f;
  const auto count =
      spikes_under_drive(1.0f, static_cast<float>(theta), drive, 2000);
  EXPECT_NEAR(static_cast<double>(count) / 2000.0,
              static_cast<double>(drive) / theta, 0.01)
      << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    BetaThetaGrid, LifGrid,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.7, 0.9),
                       ::testing::Values(0.5, 1.0, 1.5, 2.0)));

// ---- allocator invariants across densities and devices ----------------------

class AllocGrid
    : public ::testing::TestWithParam<std::tuple<double, std::string>> {};

std::vector<hw::LayerWorkload> grid_workloads(double density) {
  std::vector<hw::LayerWorkload> ws(3);
  const std::int64_t ins[] = {3072, 7200, 1152};
  const std::int64_t fan[] = {288, 288, 256};
  const std::int64_t neu[] = {28800, 5408, 256};
  for (int i = 0; i < 3; ++i) {
    auto& w = ws[static_cast<std::size_t>(i)];
    w.name = "l" + std::to_string(i);
    w.input_size = ins[i];
    w.fanout = fan[i];
    w.neurons = neu[i];
    w.num_weights = 10000;
    // First layer dense (direct-coded input), deeper layers at `density`.
    w.avg_input_spikes =
        (i == 0 ? 1.0 : density) * static_cast<double>(ins[i]);
  }
  return ws;
}

TEST_P(AllocGrid, FitsDeviceAndCoversAllLayers) {
  const auto [density, dev_name] = GetParam();
  const auto dev = hw::device_by_name(dev_name);
  const auto ws = grid_workloads(density);
  for (auto policy :
       {hw::AllocationPolicy::kBalanced, hw::AllocationPolicy::kBalancedDense,
        hw::AllocationPolicy::kUniform}) {
    const auto a = hw::allocate(ws, dev, policy);
    EXPECT_TRUE(a.usage.fits(dev));
    ASSERT_EQ(a.pes_per_layer.size(), ws.size());
    std::int64_t total = 0;
    for (auto p : a.pes_per_layer) {
      EXPECT_GE(p, 1);
      total += p;
    }
    EXPECT_EQ(total, a.total_pes);
    EXPECT_LE(a.total_pes, hw::pe_budget(dev));
  }
}

TEST_P(AllocGrid, BalancedIsMinimaxOptimalUpToOnePe) {
  // Moving one PE from any stage to the binding stage must not reduce the
  // lock-step period — i.e. greedy found a local minimax optimum.
  const auto [density, dev_name] = GetParam();
  const auto dev = hw::device_by_name(dev_name);
  const auto ws = grid_workloads(density);
  const auto a = hw::allocate(ws, dev, hw::AllocationPolicy::kBalanced);

  auto period = [&](const std::vector<std::int64_t>& pes) {
    double worst = 0.0;
    for (std::size_t i = 0; i < ws.size(); ++i)
      worst = std::max(worst,
                       hw::stage_cycles_for(ws[i].sparse_synops(),
                                            ws[i].avg_input_spikes,
                                            ws[i].neurons, pes[i]));
    return worst;
  };
  const double base = period(a.pes_per_layer);
  for (std::size_t from = 0; from < ws.size(); ++from) {
    if (a.pes_per_layer[from] <= 1) continue;
    for (std::size_t to = 0; to < ws.size(); ++to) {
      if (to == from) continue;
      auto moved = a.pes_per_layer;
      --moved[from];
      ++moved[to];
      EXPECT_GE(period(moved), base - 1e-9)
          << "moving a PE " << from << "->" << to << " improved the period";
    }
  }
}

TEST_P(AllocGrid, PerfScalesWithDensity) {
  // Doubling deep-layer density must not make the event-driven machine
  // faster or more efficient.
  const auto [density, dev_name] = GetParam();
  if (density > 0.4) GTEST_SKIP() << "no headroom above density";
  const auto dev = hw::device_by_name(dev_name);
  const auto quiet_ws = grid_workloads(density);
  const auto busy_ws = grid_workloads(density * 2.0);
  const auto qa = hw::allocate(quiet_ws, dev, hw::AllocationPolicy::kBalanced);
  const auto ba = hw::allocate(busy_ws, dev, hw::AllocationPolicy::kBalanced);
  const auto q =
      hw::analyze(quiet_ws, qa, dev, 16, hw::ComputeMode::kEventDriven);
  const auto b =
      hw::analyze(busy_ws, ba, dev, 16, hw::ComputeMode::kEventDriven);
  EXPECT_LE(q.latency_s, b.latency_s);
  EXPECT_GE(q.fps_per_watt, b.fps_per_watt);
}

INSTANTIATE_TEST_SUITE_P(
    DensityDeviceGrid, AllocGrid,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.2, 0.4, 0.8),
                       ::testing::Values("ku3p", "ku5p", "ku15p")));

// ---- surrogate scaling laws over the paper's Fig. 1 grid --------------------

class ScaleGrid : public ::testing::TestWithParam<double> {};

TEST_P(ScaleGrid, FastSigmoidPeakInvariant) {
  // The fast sigmoid's peak derivative is 1 for every k — the paper's k
  // sweep changes only the width of the learning window.
  const auto k = static_cast<float>(GetParam());
  EXPECT_NEAR(snn::Surrogate::fast_sigmoid(k).grad(0.0f), 1.0f, 1e-6f);
}

TEST_P(ScaleGrid, ArctanPeakGrowsLinearly) {
  const auto a = static_cast<float>(GetParam());
  EXPECT_NEAR(snn::Surrogate::arctan(a).grad(0.0f), a / 2.0f, 1e-5f);
}

TEST_P(ScaleGrid, LargerScaleNarrowsBothSurrogates) {
  const auto s = static_cast<float>(GetParam());
  const float v = 0.5f;
  EXPECT_LE(snn::Surrogate::fast_sigmoid(s * 2).grad(v),
            snn::Surrogate::fast_sigmoid(s).grad(v) + 1e-7f);
  // Arctan: normalized by its peak so "narrower" is well defined.
  const auto at1 = snn::Surrogate::arctan(s);
  const auto at2 = snn::Surrogate::arctan(s * 2);
  EXPECT_LE(at2.grad(v) / at2.grad(0.0f), at1.grad(v) / at1.grad(0.0f) + 1e-7f);
}

INSTANTIATE_TEST_SUITE_P(Fig1Scales, ScaleGrid,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0, 16.0,
                                           32.0));

}  // namespace
}  // namespace spiketune
