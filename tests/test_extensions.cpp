// Tests for the extension modules: checkpoint serialization, weight
// quantization, the recurrent LIF layer, and the SynthDigits dataset.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/error.h"
#include "core/serialize.h"
#include "data/synth_digits.h"
#include "snn/checkpoint.h"
#include "snn/model_zoo.h"
#include "snn/quantize.h"
#include "snn/rlif.h"
#include "tensor/gradcheck.h"
#include "tensor/tensor_ops.h"

namespace spiketune {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialize, RoundTripsTensors) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  Rng rng(1);
  std::vector<NamedTensor> records;
  records.push_back({"a", Tensor::uniform(Shape{3, 4}, rng, -1.0f, 1.0f)});
  records.push_back({"b.weight", Tensor::uniform(Shape{7}, rng, 0.0f, 2.0f)});
  records.push_back({"empty", Tensor(Shape{0})});
  save_checkpoint(path, records);

  const auto loaded = load_checkpoint(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].name, records[i].name);
    ASSERT_EQ(loaded[i].value.shape(), records[i].value.shape());
    for (std::int64_t k = 0; k < records[i].value.numel(); ++k)
      EXPECT_EQ(loaded[i].value[k], records[i].value[k]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  const std::string path = temp_path("ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint at all";
  }
  EXPECT_THROW(load_checkpoint(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncation) {
  const std::string path = temp_path("ckpt_trunc.bin");
  Rng rng(2);
  save_checkpoint(path,
                  {{"w", Tensor::uniform(Shape{64}, rng, -1.0f, 1.0f)}});
  // Truncate the payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Checkpoint, NetworkRoundTrip) {
  const std::string path = temp_path("net_ckpt.bin");
  snn::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = 8;
  cfg.num_classes = 3;
  auto a = snn::make_snn_mlp(cfg);
  cfg.weight_seed += 1;  // different init
  auto b = snn::make_snn_mlp(cfg);

  snn::save_network(path, *a);
  snn::load_network(path, *b);

  auto pa = a->params();
  auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i]->numel(); ++k)
      EXPECT_EQ(pa[i]->value[k], pb[i]->value[k]);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTopologyMismatch) {
  const std::string path = temp_path("net_mismatch.bin");
  snn::MlpConfig small;
  small.in_features = 12;
  small.hidden = 8;
  auto a = snn::make_snn_mlp(small);
  snn::save_network(path, *a);

  snn::MlpConfig big = small;
  big.hidden = 16;
  auto b = snn::make_snn_mlp(big);
  EXPECT_THROW(snn::load_network(path, *b), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Quantize, IdempotentAndBounded) {
  Rng rng(3);
  Tensor t = Tensor::uniform(Shape{1000}, rng, -2.0f, 2.0f);
  Tensor orig = t;
  snn::quantize_tensor(t, 8);
  // Error bounded by half a quantization step.
  const float max_abs = 2.0f;
  const float step = max_abs / 127.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    EXPECT_LE(std::fabs(t[i] - orig[i]), 0.5f * step + 1e-6f);
  // Idempotent: re-quantizing changes nothing.
  Tensor again = t;
  snn::quantize_tensor(again, 8);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(again[i], t[i]);
}

TEST(Quantize, FewerBitsMoreError) {
  Rng rng(4);
  snn::MlpConfig cfg;
  auto net8 = snn::make_snn_mlp(cfg);
  auto net3 = snn::make_snn_mlp(cfg);
  const auto r8 = snn::quantize_network(*net8, 8);
  const auto r3 = snn::quantize_network(*net3, 3);
  EXPECT_GT(r3.mean_abs_error, r8.mean_abs_error);
  EXPECT_GT(r3.max_abs_error, r8.max_abs_error);
  EXPECT_EQ(r8.num_values, net8->num_parameters());
}

TEST(Quantize, ZeroTensorUntouchedAndBadBitsThrow) {
  Tensor z(Shape{5});
  snn::quantize_tensor(z, 8);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(z[i], 0.0f);
  Tensor t(Shape{2}, {1.0f, -1.0f});
  EXPECT_THROW(snn::quantize_tensor(t, 1), InvalidArgument);
  EXPECT_THROW(snn::quantize_tensor(t, 17), InvalidArgument);
}

TEST(Rlif, DegeneratesToLifWithZeroRecurrence) {
  snn::RlifConfig rcfg;
  rcfg.features = 6;
  rcfg.lif.beta = 0.6f;
  rcfg.lif.threshold = 1.0f;
  snn::Rlif rlif(rcfg);
  rlif.recurrent().value.fill(0.0f);
  snn::Lif lif(rcfg.lif);

  Rng rng(5);
  rlif.begin_window(2, false);
  lif.begin_window(2, false);
  for (int t = 0; t < 6; ++t) {
    Tensor x = Tensor::uniform(Shape{2, 6}, rng, 0.0f, 1.5f);
    Tensor sr = rlif.forward_step(x);
    Tensor sl = lif.forward_step(x);
    for (std::int64_t i = 0; i < sr.numel(); ++i)
      EXPECT_EQ(sr[i], sl[i]) << "t=" << t << " i=" << i;
  }
}

TEST(Rlif, RecurrenceChangesDynamics) {
  snn::RlifConfig cfg;
  cfg.features = 4;
  cfg.lif.beta = 0.5f;
  cfg.lif.threshold = 1.0f;
  snn::Rlif with(cfg);
  with.recurrent().value.fill(0.5f);  // strong excitatory feedback
  snn::Rlif without(cfg);
  without.recurrent().value.fill(0.0f);

  with.begin_window(1, false);
  without.begin_window(1, false);
  // Sub-threshold drive: only the recurrent current can raise the rate.
  Tensor x = Tensor::full(Shape{1, 4}, 0.6f);
  std::int64_t spikes_with = 0;
  std::int64_t spikes_without = 0;
  for (int t = 0; t < 20; ++t) {
    spikes_with += ops::count_nonzero(with.forward_step(x));
    spikes_without += ops::count_nonzero(without.forward_step(x));
  }
  EXPECT_GT(spikes_with, spikes_without);
}

TEST(Rlif, BackwardAccumulatesRecurrentGrad) {
  snn::RlifConfig cfg;
  cfg.features = 5;
  cfg.lif.beta = 0.5f;
  cfg.lif.threshold = 0.5f;
  cfg.lif.surrogate = snn::Surrogate::fast_sigmoid(2.0f);
  snn::Rlif rlif(cfg);

  Rng rng(6);
  rlif.zero_grad();
  rlif.begin_window(3, true);
  std::vector<Tensor> inputs;
  for (int t = 0; t < 4; ++t) {
    inputs.push_back(Tensor::uniform(Shape{3, 5}, rng, 0.0f, 1.2f));
    rlif.forward_step(inputs.back());
  }
  rlif.begin_backward();
  Tensor g = Tensor::full(Shape{3, 5}, 1.0f);
  for (int t = 3; t >= 0; --t) {
    Tensor gi = rlif.backward_step(g);
    EXPECT_EQ(gi.shape(), Shape({3, 5}));
    for (std::int64_t i = 0; i < gi.numel(); ++i)
      EXPECT_TRUE(std::isfinite(gi[i]));
  }
  EXPECT_GT(ops::l2_norm(rlif.recurrent().grad), 0.0f);
}

TEST(Rlif, ShapeValidation) {
  snn::RlifConfig cfg;
  cfg.features = 4;
  snn::Rlif rlif(cfg);
  rlif.begin_window(1, false);
  EXPECT_THROW(rlif.forward_step(Tensor(Shape{1, 5})), InvalidArgument);
  EXPECT_EQ(rlif.output_shape(Shape{4}), Shape({4}));
  EXPECT_THROW(rlif.output_shape(Shape{5}), InvalidArgument);
}

TEST(SynthDigits, ShapeRangeDeterminism) {
  data::SynthDigitsConfig cfg;
  cfg.num_examples = 16;
  cfg.image_size = 14;
  data::SynthDigits a(cfg);
  data::SynthDigits b(cfg);
  EXPECT_EQ(a.image_shape(), Shape({1, 14, 14}));
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const auto ea = a.get(i);
    const auto eb = b.get(i);
    EXPECT_EQ(ea.label, eb.label);
    EXPECT_GE(ops::min(ea.image), 0.0f);
    EXPECT_LE(ops::max(ea.image), 1.0f);
    for (std::int64_t k = 0; k < ea.image.numel(); ++k)
      EXPECT_EQ(ea.image[k], eb.image[k]);
  }
}

TEST(SynthDigits, DigitIsBrighterThanBackground) {
  data::SynthDigitsConfig cfg;
  cfg.num_examples = 8;
  cfg.image_size = 16;
  cfg.noise_stddev = 0.0f;
  data::SynthDigits ds(cfg);
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    const auto ex = ds.get(i);
    // Dark background (a solid zero fraction even with anti-aliased ink
    // spreading); digit ink is bright.
    EXPECT_GT(ops::zero_fraction(ex.image), 0.3);
    EXPECT_LT(ops::mean(ex.image), 0.5f);
    EXPECT_GT(ops::max(ex.image), 0.7f);
  }
}

TEST(SynthDigits, SplitsDisjoint) {
  auto splits = data::make_synth_digits_splits(8, 8, 12, 99);
  int identical = 0;
  for (std::int64_t i = 0; i < 8; ++i) {
    const auto tr = splits.train.get(i);
    const auto te = splits.test.get(i);
    bool same = true;
    for (std::int64_t k = 0; k < tr.image.numel(); ++k)
      if (tr.image[k] != te.image[k]) {
        same = false;
        break;
      }
    identical += same;
  }
  EXPECT_EQ(identical, 0);
}

}  // namespace
}  // namespace spiketune
